//! The sweep service: a hand-rolled thread-pool + channel runtime over
//! the vendored `crossbeam`/`parking_lot` shims.
//!
//! [`SweepServer::start`] spawns worker threads that block on a shared
//! job channel. [`SweepClient::submit`] validates a [`SweepSpec`],
//! registers the job, and enqueues its id; the returned [`JobHandle`]
//! polls state, cancels, or blocks until the result is ready. A worker
//! owns a job end-to-end — points run *sequentially within* a job so each
//! point can warm-start from its immediate neighbor, while distinct jobs
//! run concurrently across workers against the shared [`SweepCache`].
//!
//! ## Failure model
//!
//! A point solve can fail four ways: a panic somewhere under
//! [`Simulation::run`], a typed [`DriverError`] (non-finite observables,
//! warm-start divergence, iteration-cap exhaustion), a per-point
//! deadline, or cooperative cancellation. The worker isolates each point
//! attempt behind [`std::panic::catch_unwind`] and retries with capped
//! exponential backoff ([`ServerConfig::max_attempts`]). When the failed
//! attempt was warm-started, the donor entry is quarantined — removed
//! from the shared cache — and the retry restarts cold, so one bad
//! deposit can never wedge a whole sweep. Every decision is surfaced in
//! [`JobMetrics`] (`retries`, `cold_fallbacks`, `quarantined`).

use crate::cache::{CacheConfig, CacheStats, SweepCache};
use crate::checkpoint::CheckpointJournal;
use crate::job::{JobMetrics, JobResult, JobState, PointObservables};
use crate::sweep::SweepSpec;
use crossbeam::channel::{unbounded, Receiver, Sender};
use omen_core::{
    CancelToken, ConfigError, DriverError, Simulation, SimulationResult, WarmStartData,
};
use omen_fault::FaultSite;
use omen_trace::{Counter, CounterSet};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved queue id that tells a worker to exit.
const SHUTDOWN: u64 = u64::MAX;

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (jobs in flight concurrently); min 1.
    pub workers: usize,
    /// Warm-start cache budget.
    pub cache: CacheConfig,
    /// Solve attempts per point before the whole job fails; min 1.
    pub max_attempts: u32,
    /// Delay before the first retry of a point; doubles per further
    /// retry up to [`ServerConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the between-retry delay.
    pub backoff_cap: Duration,
    /// Wall-clock budget per point *attempt*; `None` leaves solves
    /// unbounded. An expired budget surfaces as
    /// [`DriverError::DeadlineExceeded`] and counts as a failed attempt.
    pub point_deadline: Option<Duration>,
    /// Directory for per-scenario checkpoint journals. When set, every
    /// completed point is journaled ([`CheckpointJournal`]) and a new
    /// job restores journaled points instead of recomputing them.
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache: CacheConfig::default(),
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
            point_deadline: None,
            checkpoint_dir: None,
        }
    }
}

/// The per-point retry knobs, copied out of [`ServerConfig`] at start.
#[derive(Clone, Copy, Debug)]
struct RetryPolicy {
    max_attempts: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    point_deadline: Option<Duration>,
}

struct JobEntry {
    spec: SweepSpec,
    state: JobState,
    cancel: CancelToken,
    result: Option<JobResult>,
}

struct Inner {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Notified on every job state change.
    changed: Condvar,
    cache: Mutex<SweepCache>,
    /// Workers take turns blocking on the shared receiver.
    queue: Mutex<Receiver<u64>>,
    retry: RetryPolicy,
    checkpoint_dir: Option<PathBuf>,
}

/// A rejected submission.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// A sweep point's configuration failed validation.
    Invalid(ConfigError),
    /// The sweep has no points.
    EmptySweep,
    /// The server has shut down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(err) => write!(f, "invalid sweep point: {err}"),
            SubmitError::EmptySweep => write!(f, "sweep has no points"),
            SubmitError::Shutdown => write!(f, "server has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a job produced no complete result.
#[derive(Clone, Debug)]
pub enum JobError {
    /// Cancelled; carries the partial result (completed points).
    Cancelled(JobResult),
    /// A point failed mid-run.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled(partial) => {
                write!(f, "job cancelled after {} points", partial.points.len())
            }
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Submission endpoint; cheap to clone and hand to other threads.
#[derive(Clone)]
pub struct SweepClient {
    inner: Arc<Inner>,
    tx: Sender<u64>,
    next_id: Arc<AtomicU64>,
}

impl SweepClient {
    /// Validates and enqueues `spec`, returning a handle to await it.
    pub fn submit(&self, spec: SweepSpec) -> Result<JobHandle, SubmitError> {
        if spec.is_empty() {
            return Err(SubmitError::EmptySweep);
        }
        spec.validate().map_err(SubmitError::Invalid)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.jobs.lock().insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                cancel: CancelToken::new(),
                result: None,
            },
        );
        if self.tx.send(id).is_err() {
            self.inner.jobs.lock().remove(&id);
            return Err(SubmitError::Shutdown);
        }
        Ok(JobHandle {
            id,
            inner: Arc::clone(&self.inner),
        })
    }
}

/// A submitted job: poll, cancel, or block for the result.
pub struct JobHandle {
    id: u64,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// Server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.inner.jobs.lock()[&self.id].state.clone()
    }

    /// Requests cancellation. A queued job cancels immediately; a running
    /// job's in-flight point observes the token *between Born iterations*
    /// and aborts, so cancellation lands in bounded time even mid-solve.
    /// Completed points stay available as the partial result.
    pub fn cancel(&self) {
        let mut jobs = self.inner.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.cancel.cancel();
            if entry.state == JobState::Queued {
                entry.state = JobState::Cancelled;
                entry.result = Some(JobResult::default());
            }
        }
        drop(jobs);
        self.inner.changed.notify_all();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        let mut jobs = self.inner.jobs.lock();
        loop {
            let entry = &jobs[&self.id];
            match &entry.state {
                JobState::Completed => {
                    return Ok(entry.result.clone().unwrap_or_default());
                }
                JobState::Cancelled => {
                    return Err(JobError::Cancelled(
                        entry.result.clone().unwrap_or_default(),
                    ));
                }
                JobState::Failed(msg) => return Err(JobError::Failed(msg.clone())),
                JobState::Queued | JobState::Running { .. } => {}
            }
            jobs = self.inner.changed.wait(jobs);
        }
    }

    /// Blocks until done and returns the per-point observables.
    pub fn await_observables(&self) -> Result<Vec<PointObservables>, JobError> {
        self.wait().map(|result| result.points)
    }
}

/// The service: owns the workers and the warm-start cache.
pub struct SweepServer {
    inner: Arc<Inner>,
    client: SweepClient,
    workers: Vec<JoinHandle<()>>,
}

impl SweepServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> SweepServer {
        let (tx, rx) = unbounded();
        let inner = Arc::new(Inner {
            jobs: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            cache: Mutex::new(SweepCache::new(config.cache)),
            queue: Mutex::new(rx),
            retry: RetryPolicy {
                max_attempts: config.max_attempts.max(1),
                backoff_base: config.backoff_base,
                backoff_cap: config.backoff_cap,
                point_deadline: config.point_deadline,
            },
            checkpoint_dir: config.checkpoint_dir,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("omen-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn sweep worker")
            })
            .collect();
        let client = SweepClient {
            inner: Arc::clone(&inner),
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
        };
        SweepServer {
            inner,
            client,
            workers,
        }
    }

    /// A submission endpoint (cloneable, usable from any thread).
    pub fn client(&self) -> SweepClient {
        self.client.clone()
    }

    /// Submits directly through the server's own client.
    pub fn submit(&self, spec: SweepSpec) -> Result<JobHandle, SubmitError> {
        self.client.submit(spec)
    }

    /// Warm-start cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Bytes currently held by the warm-start cache.
    pub fn cache_bytes(&self) -> usize {
        self.inner.cache.lock().bytes()
    }
}

impl Drop for SweepServer {
    /// Sends one shutdown sentinel per worker and joins them. In-flight
    /// jobs finish; queued jobs behind the sentinels never start.
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.client.tx.send(SHUTDOWN);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let id = {
            let rx = inner.queue.lock();
            match rx.recv() {
                Ok(id) => id,
                Err(_) => return,
            }
        };
        if id == SHUTDOWN {
            return;
        }
        run_job(inner, id);
    }
}

/// What one sweep point produced after the retry loop succeeded.
struct PointSuccess {
    run: SimulationResult,
    data: WarmStartData,
    warm: bool,
    donor_value: Option<f64>,
}

/// Why one sweep point never produced a result.
enum PointFailure {
    /// The job's cancel token fired (before or during an attempt).
    Cancelled,
    /// Every allowed attempt failed; the message names the last error.
    Exhausted(String),
}

/// Runs one sweep job to a terminal state. Points run in sweep order so
/// every point after the first finds a same-sweep donor in the cache.
fn run_job(inner: &Inner, id: u64) {
    let (spec, cancel) = {
        let mut jobs = inner.jobs.lock();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state.is_terminal() {
            return; // cancelled while queued
        }
        entry.state = JobState::Running {
            completed: 0,
            total: entry.spec.len(),
        };
        (entry.spec.clone(), entry.cancel.clone())
    };
    inner.changed.notify_all();

    let _job_span = omen_trace::span!("sweep_job");
    let scenario = spec.scenario_hash();
    let total = spec.len();
    let t0 = Instant::now();
    let mut result = JobResult {
        points: Vec::with_capacity(total),
        metrics: JobMetrics::default(),
    };
    // Per-job accounting is a trace [`CounterSet`]: every increment also
    // lands in the process-global registry when tracing is armed, and
    // [`JobMetrics`] is materialized from this view at finish.
    let mut counters = CounterSet::new();
    // Checkpoint resume: restore journaled points of this scenario so
    // only the remaining values are recomputed. The journal is repaired
    // first so a torn tail from a crashed run never blocks appends.
    let journal = inner.checkpoint_dir.as_deref().map(|dir| {
        let _ = std::fs::create_dir_all(dir);
        let journal = CheckpointJournal::for_scenario(dir, scenario);
        let _ = journal.repair();
        journal
    });
    let mut restored: HashMap<u64, PointObservables> = HashMap::new();
    if let Some(journal) = &journal {
        for (sc, point) in journal.load() {
            if sc == scenario {
                restored.insert(point.value.to_bits(), point);
            }
        }
    }
    // Baseline for "iterations saved": the job's worst cold point.
    let mut cold_baseline: u32 = 0;
    for (i, &value) in spec.values.iter().enumerate() {
        if cancel.is_cancelled() {
            finish(inner, id, JobState::Cancelled, result, &counters, t0);
            return;
        }
        if let Some(point) = restored.get(&value.to_bits()) {
            // Already solved by an earlier (possibly crashed) job over
            // this scenario: restore the observables verbatim. Born
            // iteration counters track work done *by this job*, so a
            // restored point contributes none.
            counters.record(Counter::PointsSolved, 1);
            counters.record(Counter::ResumedPoints, 1);
            result.points.push(*point);
            let mut jobs = inner.jobs.lock();
            if let Some(entry) = jobs.get_mut(&id) {
                entry.state = JobState::Running {
                    completed: i + 1,
                    total,
                };
            }
            drop(jobs);
            inner.changed.notify_all();
            continue;
        }
        // Deterministic fault-injection key: a function of the scenario,
        // the swept value, and the point index — never of wall time — so
        // a seeded chaos run replays the exact same fault schedule.
        let point_key = omen_fault::mix(scenario ^ value.to_bits(), i as u64);
        let outcome = {
            let _span = omen_trace::span!("sweep_point");
            run_point(inner, &spec, i, scenario, point_key, &cancel, &mut counters)
        };
        match outcome {
            Ok(point) => {
                let iterations = point.run.records.len() as u32;
                counters.record(Counter::PointsSolved, 1);
                // Local only: the driver already counts BornIterations
                // into the global registry, one per iteration.
                counters.add(Counter::BornIterations, u64::from(iterations));
                if point.warm {
                    counters.record(Counter::WarmPoints, 1);
                    counters.record(
                        Counter::IterationsSaved,
                        u64::from(cold_baseline.saturating_sub(iterations)),
                    );
                } else {
                    cold_baseline = cold_baseline.max(iterations);
                }
                let observables = PointObservables {
                    value,
                    current: point.run.current(),
                    iterations,
                    warm: point.warm,
                    donor: point.donor_value,
                };
                result.points.push(observables);
                inner
                    .cache
                    .lock()
                    .insert(scenario, spec.axis, value, point.data);
                if let Some(journal) = &journal {
                    // Best effort: a failed journal write costs at most
                    // a recomputation on the next resume.
                    let _ = journal.append(scenario, &observables);
                }
            }
            Err(PointFailure::Cancelled) => {
                finish(inner, id, JobState::Cancelled, result, &counters, t0);
                return;
            }
            Err(PointFailure::Exhausted(msg)) => {
                let state = JobState::Failed(format!("point {i} (value {value}): {msg}"));
                finish(inner, id, state, result, &counters, t0);
                return;
            }
        }
        {
            let mut jobs = inner.jobs.lock();
            if let Some(entry) = jobs.get_mut(&id) {
                entry.state = JobState::Running {
                    completed: i + 1,
                    total,
                };
            }
        }
        inner.changed.notify_all();
    }
    finish(inner, id, JobState::Completed, result, &counters, t0);
}

/// Solves one sweep point, retrying with capped exponential backoff.
///
/// The first attempt warm-starts when the cache holds a same-scenario
/// donor. A failed warm attempt quarantines that donor and every later
/// attempt restarts cold. Panics under the solve are caught
/// ([`catch_unwind`]) and count as one failed attempt like any typed
/// [`DriverError`]; only [`DriverError::Cancelled`] short-circuits.
fn run_point(
    inner: &Inner,
    spec: &SweepSpec,
    idx: usize,
    scenario: u64,
    point_key: u64,
    cancel: &CancelToken,
    counters: &mut CounterSet,
) -> Result<PointSuccess, PointFailure> {
    let policy = inner.retry;
    let value = spec.values[idx];
    let mut try_warm = true;
    let mut last_error = String::new();
    for attempt in 1..=policy.max_attempts {
        if cancel.is_cancelled() {
            return Err(PointFailure::Cancelled);
        }
        if attempt > 1 {
            counters.record(Counter::Retries, 1);
            let doublings = (attempt - 2).min(16);
            let delay = policy
                .backoff_base
                .saturating_mul(1u32 << doublings)
                .min(policy.backoff_cap);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let attempt_key = omen_fault::mix(point_key, attempt as u64);
        let mut sim = match Simulation::new(spec.config_for(idx)) {
            Ok(sim) => sim,
            // A rejected configuration can never heal by retrying.
            Err(err) => return Err(PointFailure::Exhausted(err.to_string())),
        };
        sim.set_cancel_token(cancel.clone());
        sim.set_fault_key(attempt_key);
        if let Some(budget) = policy.point_deadline {
            sim.set_deadline(Instant::now() + budget);
        }
        let mut warm = false;
        let mut donor_value = None;
        if try_warm {
            let donor = inner.cache.lock().nearest(scenario, spec.axis, value);
            match donor {
                Some((dv, mut data)) => {
                    counters.record(Counter::CacheHits, 1);
                    if omen_fault::should_inject(FaultSite::DonorCorrupt, attempt_key) {
                        // Damage the donor the way a torn deposit would:
                        // one poisoned self-energy entry. The solve must
                        // fail typed (never hang or panic) and the
                        // quarantine path must retire this donor.
                        if let Some(slot) = data.sigma_l.as_mut_slice().first_mut() {
                            *slot = omen_linalg::c64(f64::NAN, 0.0);
                        }
                    }
                    if sim
                        .warm_start_with(&data, spec.axis.changes_boundaries())
                        .is_ok()
                    {
                        warm = true;
                        donor_value = Some(dv);
                    }
                }
                None => counters.record(Counter::CacheMisses, 1),
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Inside the unwind boundary on purpose: an injected panic
            // unwinds through this armed span, and the guard's drop must
            // still balance the thread's span stack.
            let _span = omen_trace::span!("point_attempt");
            if omen_fault::should_inject(FaultSite::WorkerPanic, attempt_key) {
                panic!("injected worker panic");
            }
            sim.run()
        }));
        match outcome {
            Ok(Ok(run)) => {
                return Ok(PointSuccess {
                    run,
                    data: sim.warm_start_data(),
                    warm,
                    donor_value,
                });
            }
            Ok(Err(DriverError::Cancelled { .. })) => return Err(PointFailure::Cancelled),
            Ok(Err(err)) => last_error = err.to_string(),
            Err(payload) => last_error = panic_message(payload.as_ref()),
        }
        if warm {
            // The donor seeded a failing solve: pull it out of
            // circulation and restart this point cold.
            if let Some(dv) = donor_value {
                if inner.cache.lock().quarantine(scenario, spec.axis, dv) {
                    counters.record(Counter::Quarantined, 1);
                }
            }
            counters.record(Counter::ColdFallbacks, 1);
            try_warm = false;
        }
    }
    Err(PointFailure::Exhausted(format!(
        "{} attempts failed; last error: {last_error}",
        policy.max_attempts
    )))
}

/// Renders a caught panic payload for the job's failure message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        format!("panic: {msg}")
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        format!("panic: {msg}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn finish(
    inner: &Inner,
    id: u64,
    state: JobState,
    mut result: JobResult,
    counters: &CounterSet,
    t0: Instant,
) {
    result.metrics = JobMetrics::from_counters(counters, t0.elapsed().as_secs_f64());
    {
        let mut jobs = inner.jobs.lock();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.result = Some(result);
            entry.state = state;
        }
    }
    inner.changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSpec;
    use omen_core::{Simulation, SimulationConfig};

    fn one_worker() -> SweepServer {
        SweepServer::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn e2e_job_lifecycle() {
        let server = one_worker();
        let handle = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep");
        let result = handle.wait().expect("job completes");
        assert_eq!(handle.state(), JobState::Completed);
        assert_eq!(result.points.len(), 4);
        assert!(result.points.iter().all(|p| p.current > 0.0));
        let m = result.metrics;
        assert_eq!(m.points, 4);
        assert!(server.cache_bytes() > 0);
        // Under a chaos run (OMEN_FAULT_SEED) retries and quarantines
        // legitimately perturb the warm/hit bookkeeping; the exact-count
        // assertions describe the fault-free schedule only.
        if !omen_fault::active() {
            // First point is cold, the rest warm-start off their neighbor.
            assert!(!result.points[0].warm);
            assert!(result.points[1..].iter().all(|p| p.warm));
            assert_eq!(result.points[1].donor, Some(result.points[0].value));
            assert_eq!((m.points, m.warm_points), (4, 3));
            assert_eq!((m.cache_hits, m.cache_misses), (3, 1));
            assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
            assert_eq!((m.retries, m.cold_fallbacks, m.quarantined), (0, 0, 0));
        }
    }

    #[test]
    fn warm_sweep_matches_cold_and_saves_iterations() {
        // Cold reference: each point as an independent simulation.
        let spec = SweepSpec::finfet_bias_quick();
        let tolerance = spec.base.tolerance;
        let mut cold_currents = Vec::new();
        let mut cold_iterations = 0u32;
        for i in 0..spec.len() {
            let run = Simulation::new(spec.config_for(i))
                .expect("valid config")
                .run()
                .expect("cold point converges");
            cold_currents.push(run.current());
            cold_iterations += run.records.len() as u32;
        }

        let server = one_worker();
        let result = server
            .submit(spec)
            .expect("valid sweep")
            .wait()
            .expect("job completes");

        // Observables match the cold references at tight tolerance: both
        // converged the same fixed-point equation to `tolerance`.
        for (point, cold) in result.points.iter().zip(&cold_currents) {
            let rel = ((point.current - cold) / cold).abs();
            assert!(
                rel < 10.0 * tolerance,
                "warm current {} vs cold {} at {} (rel {rel})",
                point.current,
                cold,
                point.value
            );
        }
        // Warm starts strictly reduce the total Born iteration count
        // (when no injected faults force retried points).
        if !omen_fault::active() {
            assert!(
                result.metrics.born_iterations < cold_iterations,
                "warm sweep must save iterations: {} vs cold {}",
                result.metrics.born_iterations,
                cold_iterations
            );
            assert!(result.metrics.iterations_saved > 0);
        }
    }

    #[test]
    fn cancellation_of_queued_job_is_immediate() {
        let server = one_worker();
        // Occupy the single worker …
        let busy = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep");
        // … then cancel a job that is still queued behind it.
        let queued = server
            .submit(SweepSpec::finfet_bias(6))
            .expect("valid sweep");
        queued.cancel();
        match queued.wait() {
            Err(JobError::Cancelled(partial)) => assert!(partial.points.is_empty()),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(queued.state(), JobState::Cancelled);
        // The busy job is unaffected.
        assert_eq!(busy.wait().expect("completes").points.len(), 4);
    }

    #[test]
    fn submit_rejects_bad_sweeps() {
        let server = one_worker();
        let empty = SweepSpec::new(SimulationConfig::tiny(), crate::SweepAxis::Bias, vec![]);
        assert_eq!(server.submit(empty).unwrap_err(), SubmitError::EmptySweep);
        let invalid = SweepSpec::new(
            SimulationConfig::tiny(),
            crate::SweepAxis::Temperature,
            vec![0.025, -1.0],
        );
        assert!(matches!(
            server.submit(invalid).unwrap_err(),
            SubmitError::Invalid(_)
        ));
    }

    #[test]
    fn second_job_reuses_the_shared_cache_across_jobs() {
        let server = one_worker();
        let spec = SweepSpec::finfet_bias_quick();
        let first = server
            .submit(spec.clone())
            .expect("valid sweep")
            .wait()
            .expect("completes");
        // Resubmitting the same sweep finds donors for *every* point.
        let second = server
            .submit(spec)
            .expect("valid sweep")
            .wait()
            .expect("completes");
        if !omen_fault::active() {
            assert_eq!(second.metrics.cache_misses, 0);
            assert_eq!(second.metrics.warm_points, 4);
            assert!(second.metrics.born_iterations <= first.metrics.born_iterations);
        }
    }

    #[test]
    fn checkpoint_journal_resumes_completed_points() {
        let dir = std::env::temp_dir().join(format!("omen-serve-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let start = |dir: &std::path::Path| {
            SweepServer::start(ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.to_path_buf()),
                ..ServerConfig::default()
            })
        };
        // First job: the sweep endpoints only.
        let server = start(&dir);
        let first = server
            .submit(SweepSpec::finfet_bias(2))
            .expect("valid sweep")
            .wait()
            .expect("completes");
        drop(server);

        // Second job, fresh server, same journal directory: a denser
        // sweep over the same scenario. Its endpoints match the first
        // sweep's bitwise (same linspace arithmetic), so they restore
        // from the journal and only the interior points solve.
        let server = start(&dir);
        let second = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep")
            .wait()
            .expect("completes");
        assert_eq!(second.points.len(), 4);
        assert!(second.metrics.resumed_points <= 2);
        if !omen_fault::active() {
            assert_eq!(second.metrics.resumed_points, 2);
            assert_eq!(second.metrics.points, 4);
            assert_eq!(
                second.points[0].current.to_bits(),
                first.points[0].current.to_bits(),
                "restored observables are bit-identical"
            );
            assert_eq!(
                second.points[3].current.to_bits(),
                first.points[1].current.to_bits()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn impossible_point_deadline_exhausts_retries_and_fails_typed() {
        // A zero per-point budget makes every attempt fail with
        // DeadlineExceeded: the retry loop must run its allotted
        // attempts, then fail the job with a typed message — no panic,
        // no hang, no partial-state corruption.
        let server = SweepServer::start(ServerConfig {
            workers: 1,
            max_attempts: 2,
            backoff_base: Duration::ZERO,
            point_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        let handle = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep");
        match handle.wait() {
            Err(JobError::Failed(msg)) => {
                assert!(msg.contains("deadline exceeded"), "unexpected: {msg}");
                assert!(msg.contains("2 attempts failed"), "unexpected: {msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(handle.state(), JobState::Failed(_)));
        // The worker survives the failure: a further submission still
        // reaches a terminal state instead of hanging in the queue.
        let next = server
            .submit(SweepSpec::finfet_bias(2))
            .expect("valid sweep");
        assert!(matches!(next.wait(), Err(JobError::Failed(_))));
    }
}
