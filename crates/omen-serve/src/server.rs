//! The sweep service: a hand-rolled thread-pool + channel runtime over
//! the vendored `crossbeam`/`parking_lot` shims.
//!
//! [`SweepServer::start`] spawns worker threads that block on a shared
//! job channel. [`SweepClient::submit`] validates a [`SweepSpec`],
//! registers the job, and enqueues its id; the returned [`JobHandle`]
//! polls state, cancels, or blocks until the result is ready. A worker
//! owns a job end-to-end — points run *sequentially within* a job so each
//! point can warm-start from its immediate neighbor, while distinct jobs
//! run concurrently across workers against the shared [`SweepCache`].

use crate::cache::{CacheConfig, CacheStats, SweepCache};
use crate::job::{JobMetrics, JobResult, JobState, PointObservables};
use crate::sweep::SweepSpec;
use crossbeam::channel::{unbounded, Receiver, Sender};
use omen_core::{ConfigError, Simulation};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Reserved queue id that tells a worker to exit.
const SHUTDOWN: u64 = u64::MAX;

/// Server sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (jobs in flight concurrently); min 1.
    pub workers: usize,
    /// Warm-start cache budget.
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache: CacheConfig::default(),
        }
    }
}

struct JobEntry {
    spec: SweepSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    result: Option<JobResult>,
}

struct Inner {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Notified on every job state change.
    changed: Condvar,
    cache: Mutex<SweepCache>,
    /// Workers take turns blocking on the shared receiver.
    queue: Mutex<Receiver<u64>>,
}

/// A rejected submission.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// A sweep point's configuration failed validation.
    Invalid(ConfigError),
    /// The sweep has no points.
    EmptySweep,
    /// The server has shut down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(err) => write!(f, "invalid sweep point: {err}"),
            SubmitError::EmptySweep => write!(f, "sweep has no points"),
            SubmitError::Shutdown => write!(f, "server has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a job produced no complete result.
#[derive(Clone, Debug)]
pub enum JobError {
    /// Cancelled; carries the partial result (completed points).
    Cancelled(JobResult),
    /// A point failed mid-run.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled(partial) => {
                write!(f, "job cancelled after {} points", partial.points.len())
            }
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Submission endpoint; cheap to clone and hand to other threads.
#[derive(Clone)]
pub struct SweepClient {
    inner: Arc<Inner>,
    tx: Sender<u64>,
    next_id: Arc<AtomicU64>,
}

impl SweepClient {
    /// Validates and enqueues `spec`, returning a handle to await it.
    pub fn submit(&self, spec: SweepSpec) -> Result<JobHandle, SubmitError> {
        if spec.is_empty() {
            return Err(SubmitError::EmptySweep);
        }
        spec.validate().map_err(SubmitError::Invalid)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.jobs.lock().insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                result: None,
            },
        );
        if self.tx.send(id).is_err() {
            self.inner.jobs.lock().remove(&id);
            return Err(SubmitError::Shutdown);
        }
        Ok(JobHandle {
            id,
            inner: Arc::clone(&self.inner),
        })
    }
}

/// A submitted job: poll, cancel, or block for the result.
pub struct JobHandle {
    id: u64,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// Server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.inner.jobs.lock()[&self.id].state.clone()
    }

    /// Requests cancellation. A queued job cancels immediately; a running
    /// job stops after the point in flight. Completed points stay
    /// available as the partial result.
    pub fn cancel(&self) {
        let mut jobs = self.inner.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.cancel.store(true, Ordering::Relaxed);
            if entry.state == JobState::Queued {
                entry.state = JobState::Cancelled;
                entry.result = Some(JobResult::default());
            }
        }
        drop(jobs);
        self.inner.changed.notify_all();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        let mut jobs = self.inner.jobs.lock();
        loop {
            let entry = &jobs[&self.id];
            match &entry.state {
                JobState::Completed => {
                    return Ok(entry.result.clone().unwrap_or_default());
                }
                JobState::Cancelled => {
                    return Err(JobError::Cancelled(
                        entry.result.clone().unwrap_or_default(),
                    ));
                }
                JobState::Failed(msg) => return Err(JobError::Failed(msg.clone())),
                JobState::Queued | JobState::Running { .. } => {}
            }
            jobs = self.inner.changed.wait(jobs);
        }
    }

    /// Blocks until done and returns the per-point observables.
    pub fn await_observables(&self) -> Result<Vec<PointObservables>, JobError> {
        self.wait().map(|result| result.points)
    }
}

/// The service: owns the workers and the warm-start cache.
pub struct SweepServer {
    inner: Arc<Inner>,
    client: SweepClient,
    workers: Vec<JoinHandle<()>>,
}

impl SweepServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> SweepServer {
        let (tx, rx) = unbounded();
        let inner = Arc::new(Inner {
            jobs: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            cache: Mutex::new(SweepCache::new(config.cache)),
            queue: Mutex::new(rx),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("omen-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn sweep worker")
            })
            .collect();
        let client = SweepClient {
            inner: Arc::clone(&inner),
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
        };
        SweepServer {
            inner,
            client,
            workers,
        }
    }

    /// A submission endpoint (cloneable, usable from any thread).
    pub fn client(&self) -> SweepClient {
        self.client.clone()
    }

    /// Submits directly through the server's own client.
    pub fn submit(&self, spec: SweepSpec) -> Result<JobHandle, SubmitError> {
        self.client.submit(spec)
    }

    /// Warm-start cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Bytes currently held by the warm-start cache.
    pub fn cache_bytes(&self) -> usize {
        self.inner.cache.lock().bytes()
    }
}

impl Drop for SweepServer {
    /// Sends one shutdown sentinel per worker and joins them. In-flight
    /// jobs finish; queued jobs behind the sentinels never start.
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.client.tx.send(SHUTDOWN);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let id = {
            let rx = inner.queue.lock();
            match rx.recv() {
                Ok(id) => id,
                Err(_) => return,
            }
        };
        if id == SHUTDOWN {
            return;
        }
        run_job(inner, id);
    }
}

/// Runs one sweep job to a terminal state. Points run in sweep order so
/// every point after the first finds a same-sweep donor in the cache.
fn run_job(inner: &Inner, id: u64) {
    let (spec, cancel) = {
        let mut jobs = inner.jobs.lock();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state.is_terminal() {
            return; // cancelled while queued
        }
        entry.state = JobState::Running {
            completed: 0,
            total: entry.spec.len(),
        };
        (entry.spec.clone(), Arc::clone(&entry.cancel))
    };
    inner.changed.notify_all();

    let scenario = spec.scenario_hash();
    let total = spec.len();
    let t0 = Instant::now();
    let mut result = JobResult {
        points: Vec::with_capacity(total),
        metrics: JobMetrics::default(),
    };
    // Baseline for "iterations saved": the job's worst cold point.
    let mut cold_baseline: u32 = 0;
    for (i, &value) in spec.values.iter().enumerate() {
        if cancel.load(Ordering::Relaxed) {
            finish(inner, id, JobState::Cancelled, result, t0);
            return;
        }
        let mut sim = match Simulation::new(spec.config_for(i)) {
            Ok(sim) => sim,
            Err(err) => {
                finish(inner, id, JobState::Failed(err.to_string()), result, t0);
                return;
            }
        };
        let donor = inner.cache.lock().nearest(scenario, spec.axis, value);
        let mut warm = false;
        let mut donor_value = None;
        match donor {
            Some((dv, data)) => {
                result.metrics.cache_hits += 1;
                if sim
                    .warm_start_with(&data, spec.axis.changes_boundaries())
                    .is_ok()
                {
                    warm = true;
                    donor_value = Some(dv);
                }
            }
            None => result.metrics.cache_misses += 1,
        }
        let run = sim.run();
        let iterations = run.records.len() as u32;
        result.metrics.points += 1;
        result.metrics.born_iterations += iterations;
        if warm {
            result.metrics.warm_points += 1;
            result.metrics.iterations_saved += cold_baseline.saturating_sub(iterations);
        } else {
            cold_baseline = cold_baseline.max(iterations);
        }
        result.points.push(PointObservables {
            value,
            current: run.current(),
            iterations,
            warm,
            donor: donor_value,
        });
        inner
            .cache
            .lock()
            .insert(scenario, spec.axis, value, sim.warm_start_data());
        {
            let mut jobs = inner.jobs.lock();
            if let Some(entry) = jobs.get_mut(&id) {
                entry.state = JobState::Running {
                    completed: i + 1,
                    total,
                };
            }
        }
        inner.changed.notify_all();
    }
    finish(inner, id, JobState::Completed, result, t0);
}

fn finish(inner: &Inner, id: u64, state: JobState, mut result: JobResult, t0: Instant) {
    result.metrics.seconds = t0.elapsed().as_secs_f64();
    {
        let mut jobs = inner.jobs.lock();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.result = Some(result);
            entry.state = state;
        }
    }
    inner.changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSpec;
    use omen_core::{Simulation, SimulationConfig};

    fn one_worker() -> SweepServer {
        SweepServer::start(ServerConfig {
            workers: 1,
            cache: CacheConfig::default(),
        })
    }

    #[test]
    fn e2e_job_lifecycle() {
        let server = one_worker();
        let handle = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep");
        let result = handle.wait().expect("job completes");
        assert_eq!(handle.state(), JobState::Completed);
        assert_eq!(result.points.len(), 4);
        assert!(result.points.iter().all(|p| p.current > 0.0));
        // First point is cold, the rest warm-start off their neighbor.
        assert!(!result.points[0].warm);
        assert!(result.points[1..].iter().all(|p| p.warm));
        assert_eq!(result.points[1].donor, Some(result.points[0].value));
        let m = result.metrics;
        assert_eq!((m.points, m.warm_points), (4, 3));
        assert_eq!((m.cache_hits, m.cache_misses), (3, 1));
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!(server.cache_bytes() > 0);
    }

    #[test]
    fn warm_sweep_matches_cold_and_saves_iterations() {
        // Cold reference: each point as an independent simulation.
        let spec = SweepSpec::finfet_bias_quick();
        let tolerance = spec.base.tolerance;
        let mut cold_currents = Vec::new();
        let mut cold_iterations = 0u32;
        for i in 0..spec.len() {
            let run = Simulation::new(spec.config_for(i))
                .expect("valid config")
                .run();
            cold_currents.push(run.current());
            cold_iterations += run.records.len() as u32;
        }

        let server = one_worker();
        let result = server
            .submit(spec)
            .expect("valid sweep")
            .wait()
            .expect("job completes");

        // Observables match the cold references at tight tolerance: both
        // converged the same fixed-point equation to `tolerance`.
        for (point, cold) in result.points.iter().zip(&cold_currents) {
            let rel = ((point.current - cold) / cold).abs();
            assert!(
                rel < 10.0 * tolerance,
                "warm current {} vs cold {} at {} (rel {rel})",
                point.current,
                cold,
                point.value
            );
        }
        // Warm starts strictly reduce the total Born iteration count.
        assert!(
            result.metrics.born_iterations < cold_iterations,
            "warm sweep must save iterations: {} vs cold {}",
            result.metrics.born_iterations,
            cold_iterations
        );
        assert!(result.metrics.iterations_saved > 0);
    }

    #[test]
    fn cancellation_of_queued_job_is_immediate() {
        let server = one_worker();
        // Occupy the single worker …
        let busy = server
            .submit(SweepSpec::finfet_bias_quick())
            .expect("valid sweep");
        // … then cancel a job that is still queued behind it.
        let queued = server
            .submit(SweepSpec::finfet_bias(6))
            .expect("valid sweep");
        queued.cancel();
        match queued.wait() {
            Err(JobError::Cancelled(partial)) => assert!(partial.points.is_empty()),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(queued.state(), JobState::Cancelled);
        // The busy job is unaffected.
        assert_eq!(busy.wait().expect("completes").points.len(), 4);
    }

    #[test]
    fn submit_rejects_bad_sweeps() {
        let server = one_worker();
        let empty = SweepSpec::new(SimulationConfig::tiny(), crate::SweepAxis::Bias, vec![]);
        assert_eq!(server.submit(empty).unwrap_err(), SubmitError::EmptySweep);
        let invalid = SweepSpec::new(
            SimulationConfig::tiny(),
            crate::SweepAxis::Temperature,
            vec![0.025, -1.0],
        );
        assert!(matches!(
            server.submit(invalid).unwrap_err(),
            SubmitError::Invalid(_)
        ));
    }

    #[test]
    fn second_job_reuses_the_shared_cache_across_jobs() {
        let server = one_worker();
        let spec = SweepSpec::finfet_bias_quick();
        let first = server
            .submit(spec.clone())
            .expect("valid sweep")
            .wait()
            .expect("completes");
        // Resubmitting the same sweep finds donors for *every* point.
        let second = server
            .submit(spec)
            .expect("valid sweep")
            .wait()
            .expect("completes");
        assert_eq!(second.metrics.cache_misses, 0);
        assert_eq!(second.metrics.warm_points, 4);
        assert!(second.metrics.born_iterations <= first.metrics.born_iterations);
    }
}
