//! # omen-linalg
//!
//! Numerical substrate for the `dace-omen` quantum-transport reproduction:
//! complex scalars, software binary16, dense column-major matrices with
//! BLAS-style GEMM (all transpose variants), LU solves, CSR/CSC sparse
//! products (cuSPARSE `csrmm2` / cuBLAS `gemmi` analogues), block-tridiagonal
//! containers, the specialized strided-batched small-matrix multiply (SBSMM)
//! of the paper's §5.3, and the mixed-precision split-complex path of §5.4.
//!
//! Both the dense GEMM ([`gemm()`]) and the batched SBSMM ([`sbsmm`]) run the
//! same split-complex register-tiled FMA micro-kernel over packed
//! micro-panels (see [`batched`] for the batch-level pack design and
//! [`mixed`] for the fused f16 pack-and-convert); `OMEN_FORCE_SCALAR=1`
//! pins the runtime dispatch to the portable instantiation.
//!
//! Everything is implemented from scratch over `std` (plus `rayon` for the
//! batch-parallel kernels) so the repository carries no linear-algebra
//! dependencies, mirroring the paper's "one external HPC library (BLAS)"
//! portability claim — here, zero.

pub mod batched;
pub mod blocktridiag;
pub mod complex;
pub mod dense;
pub mod gemm;
pub mod half;
pub mod lu;
pub mod mixed;
pub mod norms;
pub mod sparse;
pub mod workspace;

pub use batched::{
    give_tls_packed_b, sbsmm, sbsmm_padded, sbsmm_par, sbsmm_pb, sbsmm_scalar, sbsmm_with,
    small_gemm, small_gemm_pb, take_tls_packed_b, use_packed_kernel, BatchArena, BatchDims,
    PackedB, StrideOverlap, Strides,
};
pub use blocktridiag::BlockTriDiag;
pub use complex::{c64, C64};
pub use dense::CMatrix;
pub use gemm::{
    gemm, gemm_flops, gemm_naive, matmul, matmul3, matmul3_into, matmul_into, matmul_op,
    matmul_op_into, Op,
};
pub use half::{F16, F16_MAX, F16_MIN_POSITIVE, F16_MIN_SUBNORMAL};
pub use lu::{invert, solve, Lu, LuFactors, SingularMatrix};
pub use mixed::{
    sbsmm_f16, sbsmm_f16_packed, F16APanels, F16BPanels, Normalization, SplitF16Batch,
    NORMALIZATION_TARGET,
};
pub use norms::{magnitude_distribution, max_abs, rel_err_fro, rel_err_max, MagnitudeDistribution};
pub use sparse::{csrmm, gemmi, CscMatrix, CsrMatrix};
pub use workspace::{Workspace, WorkspaceLease, WorkspacePool};
