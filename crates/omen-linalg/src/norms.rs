//! Norms, error metrics, and value-distribution diagnostics for complex
//! slices, used across the solver for convergence checks and for
//! reproducing Fig. 7a (the output value distribution of SSE).

use crate::complex::C64;

/// Largest element magnitude of a complex slice.
pub fn max_abs(xs: &[C64]) -> f64 {
    xs.iter().map(|z| z.abs()).fold(0.0, f64::max)
}

/// Euclidean (Frobenius) norm of a complex slice.
pub fn fro(xs: &[C64]) -> f64 {
    xs.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Max-norm relative error of `got` against `want`, scaled by
/// `max(‖want‖_max, floor)` to avoid division blow-up near zero.
pub fn rel_err_max(got: &[C64], want: &[C64]) -> f64 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    let scale = max_abs(want).max(1e-300);
    got.iter()
        .zip(want.iter())
        .map(|(g, w)| (*g - *w).abs())
        .fold(0.0, f64::max)
        / scale
}

/// Frobenius-norm relative error.
pub fn rel_err_fro(got: &[C64], want: &[C64]) -> f64 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    let scale = fro(want).max(1e-300);
    let diff: f64 = got
        .iter()
        .zip(want.iter())
        .map(|(g, w)| (*g - *w).norm_sqr())
        .sum::<f64>()
        .sqrt();
    diff / scale
}

/// Summary of the order-of-magnitude distribution of the nonzero real and
/// imaginary components of a tensor — the quantity plotted in Fig. 7a.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MagnitudeDistribution {
    /// Number of exactly-zero components.
    pub zeros: usize,
    /// Number of nonzero components.
    pub nonzeros: usize,
    /// Minimum magnitude over nonzero components.
    pub min_abs: f64,
    /// Maximum magnitude.
    pub max_abs: f64,
    /// Histogram over decades: `counts[d]` counts components with
    /// `10^(lo+d) <= |x| < 10^(lo+d+1)` where `lo = decade_lo`.
    pub decade_lo: i32,
    /// Per-decade counts.
    pub counts: Vec<usize>,
}

/// Computes the decade histogram of the real and imaginary components of a
/// complex slice (both components contribute, as in the paper's plot of
/// `Σ<` real/imaginary values separately — callers split planes if needed).
pub fn magnitude_distribution(xs: &[f64]) -> MagnitudeDistribution {
    let mut zeros = 0usize;
    let mut min_abs = f64::INFINITY;
    let mut max_abs = 0.0f64;
    for &x in xs {
        let a = x.abs();
        if a == 0.0 {
            zeros += 1;
        } else {
            min_abs = min_abs.min(a);
            max_abs = max_abs.max(a);
        }
    }
    if max_abs == 0.0 {
        return MagnitudeDistribution {
            zeros,
            ..Default::default()
        };
    }
    let lo = min_abs.log10().floor() as i32;
    let hi = max_abs.log10().floor() as i32;
    let nbins = (hi - lo + 1) as usize;
    let mut counts = vec![0usize; nbins];
    let mut nonzeros = 0usize;
    for &x in xs {
        let a = x.abs();
        if a > 0.0 {
            nonzeros += 1;
            let d = (a.log10().floor() as i32 - lo) as usize;
            counts[d.min(nbins - 1)] += 1;
        }
    }
    MagnitudeDistribution {
        zeros,
        nonzeros,
        min_abs,
        max_abs,
        decade_lo: lo,
        counts,
    }
}

/// Extracts the real components of a complex slice.
pub fn real_plane(xs: &[C64]) -> Vec<f64> {
    xs.iter().map(|z| z.re).collect()
}

/// Extracts the imaginary components of a complex slice.
pub fn imag_plane(xs: &[C64]) -> Vec<f64> {
    xs.iter().map(|z| z.im).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn basic_norms() {
        let v = vec![c64(3.0, 4.0), c64(0.0, 0.0)];
        assert_eq!(max_abs(&v), 5.0);
        assert!((fro(&v) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn relative_errors() {
        let want = vec![c64(1.0, 0.0), c64(0.0, 2.0)];
        let got = vec![c64(1.0, 0.0), c64(0.0, 2.0 + 2e-6)];
        assert!((rel_err_max(&got, &want) - 1e-6).abs() < 1e-12);
        assert!(rel_err_fro(&got, &want) < 1e-6 + 1e-12);
        assert_eq!(rel_err_max(&want, &want), 0.0);
    }

    #[test]
    fn distribution_decades() {
        let xs = vec![0.0, 1e-3, 5e-3, 2e-1, 0.0, -3e-2];
        let d = magnitude_distribution(&xs);
        assert_eq!(d.zeros, 2);
        assert_eq!(d.nonzeros, 4);
        assert_eq!(d.decade_lo, -3);
        // decades: -3 -> two (1e-3, 5e-3), -2 -> one (3e-2), -1 -> one (2e-1)
        assert_eq!(d.counts, vec![2, 1, 1]);
        assert_eq!(d.min_abs, 1e-3);
        assert_eq!(d.max_abs, 0.2);
    }

    #[test]
    fn distribution_all_zero() {
        let d = magnitude_distribution(&[0.0, 0.0]);
        assert_eq!(d.zeros, 2);
        assert_eq!(d.nonzeros, 0);
        assert!(d.counts.is_empty());
    }

    #[test]
    fn planes_split() {
        let v = vec![c64(1.0, -2.0), c64(3.0, -4.0)];
        assert_eq!(real_plane(&v), vec![1.0, 3.0]);
        assert_eq!(imag_plane(&v), vec![-2.0, -4.0]);
    }
}
