//! General complex matrix-matrix multiplication (the cuBLAS `Zgemm`
//! analogue) with all transpose combinations.
//!
//! Table 7 of the paper times GEMM in NN/NT/TN/TT variants; the RGF and SSE
//! kernels use `N` and `C` (conjugate-transpose) operations. Two kernels
//! live here:
//!
//! * [`gemm`] — the production path: a packed, cache-blocked kernel in the
//!   BLIS style. Panels of `op(A)` and `op(B)` are packed into reusable
//!   thread-local buffers (transposition and conjugation are resolved
//!   during packing, so every `Op` combination runs the same inner loop),
//!   and an `MR × NR` register-tiled micro-kernel accumulates over the
//!   packed `K` dimension. Steady-state calls perform **zero heap
//!   allocations**: the pack buffers are allocated once per thread.
//! * [`gemm_naive`] — the seed's column-major AXPY/dot formulation,
//!   retained as the correctness reference for property tests and as the
//!   baseline the `table7_matmul` bench measures speedups against.
//!
//! Matrices with every dimension ≤ [`SMALL_DIM`] skip packing entirely
//! (RGF test blocks and `Norb`-sized SSE blocks are too small to amortize
//! it) and run an allocation-free direct loop.

// Kernel helpers mirror BLAS gemm parameter lists.
#![allow(clippy::too_many_arguments)]

use crate::complex::C64;
use crate::dense::CMatrix;
use std::cell::RefCell;

/// Transpose operation applied to a GEMM operand, mirroring the BLAS
/// `N`/`T`/`C` convention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Use the matrix as stored.
    N,
    /// Use the transpose.
    T,
    /// Use the conjugate transpose.
    C,
}

impl Op {
    /// Logical number of rows of `op(A)` for an `r × c` stored matrix.
    #[inline]
    pub fn rows(self, r: usize, c: usize) -> usize {
        match self {
            Op::N => r,
            Op::T | Op::C => c,
        }
    }

    /// Logical number of columns of `op(A)`.
    #[inline]
    pub fn cols(self, r: usize, c: usize) -> usize {
        match self {
            Op::N => c,
            Op::T | Op::C => r,
        }
    }
}

/// Micro-kernel tile rows (C update granularity down a column). Shared
/// with the batched SBSMM pack pass in [`crate::batched`].
pub(crate) const MR: usize = 4;
/// Micro-kernel tile columns.
pub(crate) const NR: usize = 4;
/// Cache-block rows of `op(A)` packed at once (`MC × KC` panel).
const MC: usize = 64;
/// Cache-block depth shared by both packed panels.
const KC: usize = 128;
/// Cache-block columns of `op(B)` packed at once (`KC × NC` panel).
const NC: usize = 256;

/// Largest dimension for which the direct (non-packing) path runs. Below
/// this, pack/writeback overhead dominates the `O(n³)` work.
pub const SMALL_DIM: usize = 16;

/// Split-complex pack buffers: real and imaginary planes of the `A` and
/// `B` panels. Splitting the planes lets the micro-kernel run pure-`f64`
/// lanes (no interleave shuffles), which is what makes it vectorizable.
#[derive(Default)]
struct PackBufs {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
}

thread_local! {
    /// Reusable pack buffers. Sized on first use; every later `gemm` on
    /// this thread is allocation-free.
    static PACK_BUFS: RefCell<PackBufs> = RefCell::new(PackBufs::default());
}

/// `C = alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Shapes: `op_a(A)` is `m × k`, `op_b(B)` is `k × n`, `C` is `m × n`.
///
/// # Panics
/// Panics if the operand shapes are inconsistent.
pub fn gemm(alpha: C64, a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op, beta: C64, c: &mut CMatrix) {
    let (m, n, k) = check_shapes(a, op_a, b, op_b, c);

    // Scale C by beta first.
    if beta == C64::ZERO {
        c.fill_zero();
    } else if beta != C64::ONE {
        c.scale_inplace(beta);
    }
    if alpha == C64::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    omen_trace::add2(
        omen_trace::Counter::GemmCalls,
        1,
        omen_trace::Counter::GemmFlops,
        gemm_flops(m, n, k),
    );

    if m <= SMALL_DIM && n <= SMALL_DIM && k <= SMALL_DIM {
        gemm_small(alpha, a, op_a, b, op_b, c, m, n, k);
    } else {
        gemm_packed(alpha, a, op_a, b, op_b, c, m, n, k);
    }
}

/// Shared shape validation; returns `(m, n, k)`.
fn check_shapes(
    a: &CMatrix,
    op_a: Op,
    b: &CMatrix,
    op_b: Op,
    c: &CMatrix,
) -> (usize, usize, usize) {
    let m = op_a.rows(a.rows(), a.cols());
    let k = op_a.cols(a.rows(), a.cols());
    let kb = op_b.rows(b.rows(), b.cols());
    let n = op_b.cols(b.rows(), b.cols());
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!(
        (c.rows(), c.cols()),
        (m, n),
        "gemm output shape mismatch: C is {}x{}, expected {m}x{n}",
        c.rows(),
        c.cols()
    );
    (m, n, k)
}

/// Fetches element `(i, j)` of `op(M)` where `M` is stored `r × c`.
#[inline(always)]
fn fetch(m: &CMatrix, op: Op, i: usize, j: usize) -> C64 {
    match op {
        Op::N => m[(i, j)],
        Op::T => m[(j, i)],
        Op::C => m[(j, i)].conj(),
    }
}

// ---------------------------------------------------------------------------
// Small direct path (no packing, no allocation).
// ---------------------------------------------------------------------------

/// Direct loops for tiny operands. The `B` column is staged on the stack
/// (`k ≤ SMALL_DIM`), keeping the accumulation loop contiguous in `A`.
fn gemm_small(
    alpha: C64,
    a: &CMatrix,
    op_a: Op,
    b: &CMatrix,
    op_b: Op,
    c: &mut CMatrix,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(k <= SMALL_DIM);
    let mut bcol = [C64::ZERO; SMALL_DIM];
    for j in 0..n {
        for (l, slot) in bcol.iter_mut().enumerate().take(k) {
            *slot = fetch(b, op_b, l, j);
        }
        let cj = c.col_mut(j);
        match op_a {
            // AXPY form: stream down contiguous columns of A and C.
            Op::N => {
                for (l, &bv) in bcol.iter().enumerate().take(k) {
                    let w = alpha * bv;
                    if w == C64::ZERO {
                        continue;
                    }
                    for (ci, &ail) in cj.iter_mut().zip(a.col(l).iter()) {
                        *ci = ci.mul_add(ail, w);
                    }
                }
            }
            // Dot form: row i of op(A) is contiguous column i of A.
            Op::T | Op::C => {
                let conj_a = op_a == Op::C;
                for (i, ci) in cj.iter_mut().enumerate().take(m) {
                    let ai = a.col(i);
                    let mut acc = C64::ZERO;
                    if conj_a {
                        for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                            acc = acc.mul_add(av.conj(), bv);
                        }
                    } else {
                        for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                            acc = acc.mul_add(av, bv);
                        }
                    }
                    *ci = ci.mul_add(alpha, acc);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed cache-blocked path.
// ---------------------------------------------------------------------------

/// `true` when the environment forces the portable (non-AVX2) micro-kernel
/// instantiation. CI runs a dedicated job leg with `OMEN_FORCE_SCALAR=1`
/// so the fallback path cannot rot on AVX2-only runners.
fn scalar_forced() -> bool {
    std::env::var_os("OMEN_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty())
}

/// `true` when the FMA/AVX2 micro-kernel can run (checked once; the
/// `OMEN_FORCE_SCALAR` environment override pins it to `false`).
#[cfg(target_arch = "x86_64")]
pub(crate) fn fma_available() -> bool {
    static FMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FMA.get_or_init(|| {
        !scalar_forced()
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn fma_available() -> bool {
    // Evaluated for the side effect of keeping the override linked on
    // non-x86 targets too (the portable kernel is already the only path).
    let _ = scalar_forced();
    false
}

/// Dispatches one register-tile accumulation to the AVX2+FMA or portable
/// micro-kernel instantiation. `fma` must come from [`fma_available`].
#[inline]
pub(crate) fn run_micro_kernel(
    fma: bool,
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [f64; MR * NR],
    acc_im: &mut [f64; MR * NR],
) {
    if fma {
        // SAFETY: `fma` is true only when the CPU reports AVX2 + FMA.
        unsafe { micro_kernel_fma(a_re, a_im, b_re, b_im, acc_re, acc_im) }
    } else {
        micro_kernel_portable(a_re, a_im, b_re, b_im, acc_re, acc_im);
    }
}

/// Blocked loop nest: for each `KC × NC` panel of `op(B)` and `MC × KC`
/// panel of `op(A)`, split-complex packed copies feed the register-tiled
/// micro-kernel.
fn gemm_packed(
    alpha: C64,
    a: &CMatrix,
    op_a: Op,
    b: &CMatrix,
    op_b: Op,
    c: &mut CMatrix,
    m: usize,
    n: usize,
    k: usize,
) {
    let fma = fma_available();
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let p = &mut *bufs;
        p.a_re.resize(MC * KC, 0.0);
        p.a_im.resize(MC * KC, 0.0);
        p.b_re.resize(KC * NC, 0.0);
        p.b_im.resize(KC * NC, 0.0);

        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let nc_panels = nc.div_ceil(NR);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(b, op_b, pc, jc, kc, nc, &mut p.b_re, &mut p.b_im);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    let mc_panels = mc.div_ceil(MR);
                    pack_a(a, op_a, ic, pc, mc, kc, &mut p.a_re, &mut p.a_im);
                    for jp in 0..nc_panels {
                        let jr = jp * NR;
                        let nr_eff = NR.min(nc - jr);
                        let bo = jp * KC * NR;
                        let b_re = &p.b_re[bo..bo + kc * NR];
                        let b_im = &p.b_im[bo..bo + kc * NR];
                        for ip in 0..mc_panels {
                            let ir = ip * MR;
                            let mr_eff = MR.min(mc - ir);
                            let ao = ip * KC * MR;
                            let a_re = &p.a_re[ao..ao + kc * MR];
                            let a_im = &p.a_im[ao..ao + kc * MR];
                            let mut acc_re = [0.0f64; MR * NR];
                            let mut acc_im = [0.0f64; MR * NR];
                            run_micro_kernel(fma, a_re, a_im, b_re, b_im, &mut acc_re, &mut acc_im);
                            // Writeback: C += alpha * acc (valid lanes only;
                            // padded lanes hold zeros and are skipped).
                            for j in 0..nr_eff {
                                let cj = c.col_mut(jc + jr + j);
                                for i in 0..mr_eff {
                                    let t = j * MR + i;
                                    let prod = alpha * crate::complex::c64(acc_re[t], acc_im[t]);
                                    cj[ic + ir + i] += prod;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
}

/// The register tile over split-complex panels:
/// `acc[j*MR + i] += Σ_p a[p*MR + i] · b[p*NR + j]` with
/// `re += ar·br − ai·bi`, `im += ar·bi + ai·br`. `chunks_exact` pins the
/// panel shapes so the compiler drops all bounds checks and keeps the tile
/// in registers; `FMA` selects fused `mul_add` (hardware FMA only — on
/// targets without it, `mul_add` falls back to a libm call, so the
/// portable instantiation uses plain multiply-add expressions).
#[inline(always)]
fn micro_kernel_body<const FMA: bool>(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [f64; MR * NR],
    acc_im: &mut [f64; MR * NR],
) {
    let panels = a_re
        .chunks_exact(MR)
        .zip(a_im.chunks_exact(MR))
        .zip(b_re.chunks_exact(NR).zip(b_im.chunks_exact(NR)));
    for ((ar, ai), (br, bi)) in panels {
        for j in 0..NR {
            let brj = br[j];
            let bij = bi[j];
            for i in 0..MR {
                let t = j * MR + i;
                if FMA {
                    acc_re[t] = ar[i].mul_add(brj, ai[i].mul_add(-bij, acc_re[t]));
                    acc_im[t] = ar[i].mul_add(bij, ai[i].mul_add(brj, acc_im[t]));
                } else {
                    acc_re[t] += ar[i] * brj - ai[i] * bij;
                    acc_im[t] += ar[i] * bij + ai[i] * brj;
                }
            }
        }
    }
}

/// AVX2/FMA instantiation of the micro-kernel. The `target_feature`
/// attribute lets LLVM emit 4-wide `vfmadd` over the `MR` lanes.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_fma(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [f64; MR * NR],
    acc_im: &mut [f64; MR * NR],
) {
    micro_kernel_body::<true>(a_re, a_im, b_re, b_im, acc_re, acc_im);
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn micro_kernel_fma(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [f64; MR * NR],
    acc_im: &mut [f64; MR * NR],
) {
    micro_kernel_body::<false>(a_re, a_im, b_re, b_im, acc_re, acc_im);
}

/// Baseline-ISA instantiation (no fused multiply-add).
fn micro_kernel_portable(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [f64; MR * NR],
    acc_im: &mut [f64; MR * NR],
) {
    micro_kernel_body::<false>(a_re, a_im, b_re, b_im, acc_re, acc_im);
}

/// Packs the `mc × kc` block of `op(A)` at `(ic, pc)` into split-complex
/// row micro-panels of `MR` (k-major within a panel), zero-padding the
/// tail rows so the micro-kernel never branches on the edge.
fn pack_a(
    a: &CMatrix,
    op_a: Op,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let conj = op_a == Op::C;
    for ip in 0..mc.div_ceil(MR) {
        let ir = ip * MR;
        let rows = MR.min(mc - ir);
        let base = ip * KC * MR;
        let (pre, pim) = (
            &mut out_re[base..base + kc * MR],
            &mut out_im[base..base + kc * MR],
        );
        match op_a {
            // op(A)[ic+ir+i, pc+p] = A[ic+ir+i, pc+p]: contiguous down
            // stored columns.
            Op::N => {
                for p in 0..kc {
                    let col = a.col(pc + p);
                    for i in 0..rows {
                        let z = col[ic + ir + i];
                        pre[p * MR + i] = z.re;
                        pim[p * MR + i] = z.im;
                    }
                    for i in rows..MR {
                        pre[p * MR + i] = 0.0;
                        pim[p * MR + i] = 0.0;
                    }
                }
            }
            // op(A)[i, p] = A[p, i] (conjugated for C): a packed row comes
            // from a stored column, so walk columns of A.
            Op::T | Op::C => {
                for i in 0..rows {
                    let col = a.col(ic + ir + i);
                    for p in 0..kc {
                        let z = col[pc + p];
                        pre[p * MR + i] = z.re;
                        pim[p * MR + i] = if conj { -z.im } else { z.im };
                    }
                }
                for i in rows..MR {
                    for p in 0..kc {
                        pre[p * MR + i] = 0.0;
                        pim[p * MR + i] = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` at `(pc, jc)` into split-complex
/// column micro-panels of `NR` (k-major within a panel), zero-padded like
/// [`pack_a`].
fn pack_b(
    b: &CMatrix,
    op_b: Op,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let conj = op_b == Op::C;
    for jp in 0..nc.div_ceil(NR) {
        let jr = jp * NR;
        let cols = NR.min(nc - jr);
        let base = jp * KC * NR;
        let (pre, pim) = (
            &mut out_re[base..base + kc * NR],
            &mut out_im[base..base + kc * NR],
        );
        match op_b {
            // op(B)[pc+p, jc+jr+j] = B[pc+p, jc+jr+j]: a packed column is a
            // stored column.
            Op::N => {
                for j in 0..cols {
                    let col = b.col(jc + jr + j);
                    for p in 0..kc {
                        let z = col[pc + p];
                        pre[p * NR + j] = z.re;
                        pim[p * NR + j] = z.im;
                    }
                }
                for j in cols..NR {
                    for p in 0..kc {
                        pre[p * NR + j] = 0.0;
                        pim[p * NR + j] = 0.0;
                    }
                }
            }
            // op(B)[p, j] = B[j, p]: a packed column is a stored row, so a
            // packed k-slab is contiguous in the stored column `pc+p`.
            Op::T | Op::C => {
                for p in 0..kc {
                    let col = b.col(pc + p);
                    for j in 0..cols {
                        let z = col[jc + jr + j];
                        pre[p * NR + j] = z.re;
                        pim[p * NR + j] = if conj { -z.im } else { z.im };
                    }
                    for j in cols..NR {
                        pre[p * NR + j] = 0.0;
                        pim[p * NR + j] = 0.0;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naive reference (the seed kernel, retained).
// ---------------------------------------------------------------------------

/// The seed's unblocked kernel: column-major AXPY (`op_a == N`) / dot
/// (`op_a ∈ {T, C}`) loops. Retained as the property-test oracle and the
/// baseline for the Table 7 speedup measurements — not used on hot paths.
pub fn gemm_naive(
    alpha: C64,
    a: &CMatrix,
    op_a: Op,
    b: &CMatrix,
    op_b: Op,
    beta: C64,
    c: &mut CMatrix,
) {
    let (m, n, k) = check_shapes(a, op_a, b, op_b, c);
    if beta == C64::ZERO {
        c.fill_zero();
    } else if beta != C64::ONE {
        c.scale_inplace(beta);
    }
    if alpha == C64::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    match op_a {
        Op::N => {
            for j in 0..n {
                let cj = c.col_mut(j);
                for l in 0..k {
                    let w = alpha * fetch(b, op_b, l, j);
                    if w == C64::ZERO {
                        continue;
                    }
                    for (ci, &ail) in cj.iter_mut().zip(a.col(l).iter()) {
                        *ci = ci.mul_add(ail, w);
                    }
                }
            }
        }
        Op::T | Op::C => {
            let conj_a = op_a == Op::C;
            // Stage op(B) column j into a contiguous scratch, reused across i.
            let mut bcol = vec![C64::ZERO; k];
            for j in 0..n {
                for (l, slot) in bcol.iter_mut().enumerate() {
                    *slot = fetch(b, op_b, l, j);
                }
                let cj = c.col_mut(j);
                for (i, ci) in cj.iter_mut().enumerate().take(m) {
                    let ai = a.col(i); // column i of A == row i of op(A)
                    let mut acc = C64::ZERO;
                    if conj_a {
                        for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                            acc = acc.mul_add(av.conj(), bv);
                        }
                    } else {
                        for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                            acc = acc.mul_add(av, bv);
                        }
                    }
                    *ci = ci.mul_add(alpha, acc);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Convenience wrappers.
// ---------------------------------------------------------------------------

/// Allocating convenience wrapper: returns `A * B`.
pub fn matmul(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut c = CMatrix::zeros(a.rows(), b.cols());
    gemm(C64::ONE, a, Op::N, b, Op::N, C64::ZERO, &mut c);
    c
}

/// Non-allocating `C = A * B`: `c` is resized to fit (buffer reused).
pub fn matmul_into(a: &CMatrix, b: &CMatrix, c: &mut CMatrix) {
    c.resize_for_overwrite(a.rows(), b.cols());
    gemm(C64::ONE, a, Op::N, b, Op::N, C64::ZERO, c);
}

/// Allocating convenience wrapper: returns `op_a(A) * op_b(B)`.
pub fn matmul_op(a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op) -> CMatrix {
    let m = op_a.rows(a.rows(), a.cols());
    let n = op_b.cols(b.rows(), b.cols());
    let mut c = CMatrix::zeros(m, n);
    gemm(C64::ONE, a, op_a, b, op_b, C64::ZERO, &mut c);
    c
}

/// Non-allocating `C = op_a(A) * op_b(B)`: `c` is resized to fit.
pub fn matmul_op_into(a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op, c: &mut CMatrix) {
    let m = op_a.rows(a.rows(), a.cols());
    let n = op_b.cols(b.rows(), b.cols());
    c.resize_for_overwrite(m, n);
    gemm(C64::ONE, a, op_a, b, op_b, C64::ZERO, c);
}

/// Triple product `A * B * C`, associating left-to-right.
pub fn matmul3(a: &CMatrix, b: &CMatrix, c: &CMatrix) -> CMatrix {
    matmul(&matmul(a, b), c)
}

/// Non-allocating triple product `out = A * B * C` (left-to-right) using a
/// caller-supplied scratch for the intermediate `A * B`.
pub fn matmul3_into(
    a: &CMatrix,
    b: &CMatrix,
    c: &CMatrix,
    scratch: &mut CMatrix,
    out: &mut CMatrix,
) {
    matmul_into(a, b, scratch);
    matmul_into(scratch, c, out);
}

/// Flop count of one complex GEMM with the paper's convention: a complex
/// multiply-add costs 8 real flops, so `m × n × k` MACs cost `8 m n k`.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    8 * (m as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn naive(a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op) -> CMatrix {
        let m = op_a.rows(a.rows(), a.cols());
        let k = op_a.cols(a.rows(), a.cols());
        let n = op_b.cols(b.rows(), b.cols());
        let fa = |i: usize, l: usize| match op_a {
            Op::N => a[(i, l)],
            Op::T => a[(l, i)],
            Op::C => a[(l, i)].conj(),
        };
        let fb = |l: usize, j: usize| match op_b {
            Op::N => b[(l, j)],
            Op::T => b[(j, l)],
            Op::C => b[(j, l)].conj(),
        };
        CMatrix::from_fn(m, n, |i, j| (0..k).map(|l| fa(i, l) * fb(l, j)).sum())
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> CMatrix {
        CMatrix::from_fn(r, c, |i, j| {
            c64(
                ((i * 31 + j * 7) as f64 * 0.173 + seed).sin(),
                ((i * 13 + j * 17) as f64 * 0.311 - seed).cos(),
            )
        })
    }

    #[test]
    fn all_op_combinations_match_naive() {
        // op(A) must be 4x3, op(B) 3x5.
        for &op_a in &[Op::N, Op::T, Op::C] {
            for &op_b in &[Op::N, Op::T, Op::C] {
                let a = match op_a {
                    Op::N => test_mat(4, 3, 0.1),
                    _ => test_mat(3, 4, 0.1),
                };
                let b = match op_b {
                    Op::N => test_mat(3, 5, 0.7),
                    _ => test_mat(5, 3, 0.7),
                };
                let got = matmul_op(&a, op_a, &b, op_b);
                let want = naive(&a, op_a, &b, op_b);
                assert!(
                    got.approx_eq(&want, 1e-12),
                    "mismatch for ({op_a:?},{op_b:?})"
                );
            }
        }
    }

    #[test]
    fn packed_path_matches_naive_all_ops() {
        // Sizes above SMALL_DIM with non-multiples of every block size so
        // all edge-tile paths run.
        let (m, n, k) = (37, 29, 23);
        for &op_a in &[Op::N, Op::T, Op::C] {
            for &op_b in &[Op::N, Op::T, Op::C] {
                let a = match op_a {
                    Op::N => test_mat(m, k, 0.3),
                    _ => test_mat(k, m, 0.3),
                };
                let b = match op_b {
                    Op::N => test_mat(k, n, 0.8),
                    _ => test_mat(n, k, 0.8),
                };
                let c0 = test_mat(m, n, 1.9);
                let alpha = c64(0.7, -0.4);
                let beta = c64(-1.1, 0.2);
                let mut got = c0.clone();
                gemm(alpha, &a, op_a, &b, op_b, beta, &mut got);
                let mut want = c0.clone();
                gemm_naive(alpha, &a, op_a, &b, op_b, beta, &mut want);
                assert!(
                    got.approx_eq(&want, 1e-11),
                    "packed/naive mismatch for ({op_a:?},{op_b:?})"
                );
            }
        }
    }

    #[test]
    fn packed_path_spans_multiple_cache_blocks() {
        // k > KC and n > NC exercise the outer blocked loops.
        let (m, n, k) = (70, NC + 5, KC + 9);
        let a = test_mat(m, k, 0.2);
        let b = test_mat(k, n, 0.6);
        let got = matmul(&a, &b);
        let mut want = CMatrix::zeros(m, n);
        gemm_naive(C64::ONE, &a, Op::N, &b, Op::N, C64::ZERO, &mut want);
        // Tile reassociation changes rounding; tolerance scaled to k.
        assert!(got.approx_eq(&want, 1e-10));
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = test_mat(3, 3, 0.3);
        let b = test_mat(3, 3, 0.9);
        let c0 = test_mat(3, 3, 1.5);
        let mut c = c0.clone();
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        gemm(alpha, &a, Op::N, &b, Op::N, beta, &mut c);
        let want = {
            let mut w2 = c0.scaled(beta);
            w2 += &naive(&a, Op::N, &b, Op::N).scaled(alpha);
            w2
        };
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(5, 5, 0.2);
        let id = CMatrix::identity(5);
        assert!(matmul(&a, &id).approx_eq(&a, 1e-14));
        assert!(matmul(&id, &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn adjoint_product_identity() {
        // (A B)† == B† A†
        let a = test_mat(4, 3, 0.5);
        let b = test_mat(3, 6, 1.1);
        let lhs = matmul(&a, &b).adjoint();
        let rhs = matmul_op(&b, Op::C, &a, Op::C);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn rectangular_shapes() {
        let a = test_mat(7, 2, 0.0);
        let b = test_mat(2, 9, 0.4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (7, 9));
        assert!(c.approx_eq(&naive(&a, Op::N, &b, Op::N), 1e-12));
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = test_mat(3, 3, 0.0);
        let b = test_mat(3, 3, 0.1);
        let c0 = test_mat(3, 3, 0.2);
        let mut c = c0.clone();
        gemm(C64::ZERO, &a, Op::N, &b, Op::N, c64(3.0, 0.0), &mut c);
        assert!(c.approx_eq(&c0.scaled(c64(3.0, 0.0)), 1e-14));
    }

    #[test]
    fn matmul3_associativity() {
        let a = test_mat(3, 4, 0.1);
        let b = test_mat(4, 2, 0.2);
        let c = test_mat(2, 5, 0.3);
        let lhs = matmul3(&a, &b, &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn into_variants_match_allocating() {
        let a = test_mat(21, 17, 0.4);
        let b = test_mat(17, 33, 0.9);
        let c = test_mat(33, 12, 1.3);
        let mut out = CMatrix::zeros(1, 1); // wrong shape: resized internally
        matmul_into(&a, &b, &mut out);
        assert!(out.approx_eq(&matmul(&a, &b), 0.0));
        matmul_op_into(&b, Op::C, &a, Op::C, &mut out);
        assert!(out.approx_eq(&matmul_op(&b, Op::C, &a, Op::C), 0.0));
        let mut scratch = CMatrix::zeros(0, 0);
        matmul3_into(&a, &b, &c, &mut scratch, &mut out);
        assert!(out.approx_eq(&matmul3(&a, &b, &c), 0.0));
    }

    #[test]
    fn flop_count_convention() {
        assert_eq!(gemm_flops(12, 12, 12), 8 * 12 * 12 * 12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
