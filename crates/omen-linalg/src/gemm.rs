//! General complex matrix-matrix multiplication (the cuBLAS `Zgemm`
//! analogue) with all transpose combinations.
//!
//! Table 7 of the paper times GEMM in NN/NT/TN/TT variants; the RGF and SSE
//! kernels use `N` and `C` (conjugate-transpose) operations. The kernels
//! here are cache-aware but deliberately simple: column-major AXPY/dot
//! formulations that keep the innermost loop contiguous.

// Kernel helpers mirror BLAS gemm parameter lists.
#![allow(clippy::too_many_arguments)]

use crate::complex::C64;
use crate::dense::CMatrix;

/// Transpose operation applied to a GEMM operand, mirroring the BLAS
/// `N`/`T`/`C` convention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Use the matrix as stored.
    N,
    /// Use the transpose.
    T,
    /// Use the conjugate transpose.
    C,
}

impl Op {
    /// Logical number of rows of `op(A)` for an `r × c` stored matrix.
    #[inline]
    pub fn rows(self, r: usize, c: usize) -> usize {
        match self {
            Op::N => r,
            Op::T | Op::C => c,
        }
    }

    /// Logical number of columns of `op(A)`.
    #[inline]
    pub fn cols(self, r: usize, c: usize) -> usize {
        match self {
            Op::N => c,
            Op::T | Op::C => r,
        }
    }
}

/// `C = alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Shapes: `op_a(A)` is `m × k`, `op_b(B)` is `k × n`, `C` is `m × n`.
///
/// # Panics
/// Panics if the operand shapes are inconsistent.
pub fn gemm(alpha: C64, a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op, beta: C64, c: &mut CMatrix) {
    let m = op_a.rows(a.rows(), a.cols());
    let k = op_a.cols(a.rows(), a.cols());
    let kb = op_b.rows(b.rows(), b.cols());
    let n = op_b.cols(b.rows(), b.cols());
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!(
        (c.rows(), c.cols()),
        (m, n),
        "gemm output shape mismatch: C is {}x{}, expected {m}x{n}",
        c.rows(),
        c.cols()
    );

    // Scale C by beta first.
    if beta == C64::ZERO {
        c.fill_zero();
    } else if beta != C64::ONE {
        c.scale_inplace(beta);
    }
    if alpha == C64::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (op_a, op_b) {
        (Op::N, _) => gemm_n_any(alpha, a, b, op_b, c, m, n, k),
        (Op::T, _) => gemm_tc_any(alpha, a, false, b, op_b, c, m, n, k),
        (Op::C, _) => gemm_tc_any(alpha, a, true, b, op_b, c, m, n, k),
    }
}

/// Fetches element `(k, j)` of `op(B)` where `B` is stored `rb × cb`.
#[inline(always)]
fn fetch_b(b: &CMatrix, op_b: Op, k: usize, j: usize) -> C64 {
    match op_b {
        Op::N => b[(k, j)],
        Op::T => b[(j, k)],
        Op::C => b[(j, k)].conj(),
    }
}

/// `op_a == N`: AXPY formulation. The inner loop runs down a contiguous
/// column of `A` and a contiguous column of `C`.
fn gemm_n_any(
    alpha: C64,
    a: &CMatrix,
    b: &CMatrix,
    op_b: Op,
    c: &mut CMatrix,
    _m: usize,
    n: usize,
    k: usize,
) {
    for j in 0..n {
        let cj = c.col_mut(j);
        for l in 0..k {
            let w = alpha * fetch_b(b, op_b, l, j);
            if w == C64::ZERO {
                continue;
            }
            let al = a.col(l);
            for (ci, &ail) in cj.iter_mut().zip(al.iter()) {
                *ci = ci.mul_add(ail, w);
            }
        }
    }
}

/// `op_a ∈ {T, C}`: dot-product formulation. `op(A)[i, l] = A[l, i]`
/// (conjugated for `C`), so the inner loop runs down a contiguous column of
/// `A`.
fn gemm_tc_any(
    alpha: C64,
    a: &CMatrix,
    conj_a: bool,
    b: &CMatrix,
    op_b: Op,
    c: &mut CMatrix,
    m: usize,
    n: usize,
    k: usize,
) {
    // Stage op(B) column j into a contiguous scratch to keep the dot loop
    // simple; the scratch is reused across i.
    let mut bcol = vec![C64::ZERO; k];
    for j in 0..n {
        for (l, slot) in bcol.iter_mut().enumerate() {
            *slot = fetch_b(b, op_b, l, j);
        }
        let cj = c.col_mut(j);
        for (i, ci) in cj.iter_mut().enumerate().take(m) {
            let ai = a.col(i); // column i of A == row i of op(A)
            let mut acc = C64::ZERO;
            if conj_a {
                for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                    acc = acc.mul_add(av.conj(), bv);
                }
            } else {
                for (&av, &bv) in ai.iter().zip(bcol.iter()) {
                    acc = acc.mul_add(av, bv);
                }
            }
            *ci = ci.mul_add(alpha, acc);
        }
    }
}

/// Allocating convenience wrapper: returns `A * B`.
pub fn matmul(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut c = CMatrix::zeros(a.rows(), b.cols());
    gemm(C64::ONE, a, Op::N, b, Op::N, C64::ZERO, &mut c);
    c
}

/// Allocating convenience wrapper: returns `op_a(A) * op_b(B)`.
pub fn matmul_op(a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op) -> CMatrix {
    let m = op_a.rows(a.rows(), a.cols());
    let n = op_b.cols(b.rows(), b.cols());
    let mut c = CMatrix::zeros(m, n);
    gemm(C64::ONE, a, op_a, b, op_b, C64::ZERO, &mut c);
    c
}

/// Triple product `A * B * C`, associating left-to-right.
pub fn matmul3(a: &CMatrix, b: &CMatrix, c: &CMatrix) -> CMatrix {
    matmul(&matmul(a, b), c)
}

/// Flop count of one complex GEMM with the paper's convention: a complex
/// multiply-add costs 8 real flops, so `m × n × k` MACs cost `8 m n k`.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    8 * (m as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn naive(a: &CMatrix, op_a: Op, b: &CMatrix, op_b: Op) -> CMatrix {
        let m = op_a.rows(a.rows(), a.cols());
        let k = op_a.cols(a.rows(), a.cols());
        let n = op_b.cols(b.rows(), b.cols());
        let fa = |i: usize, l: usize| match op_a {
            Op::N => a[(i, l)],
            Op::T => a[(l, i)],
            Op::C => a[(l, i)].conj(),
        };
        let fb = |l: usize, j: usize| match op_b {
            Op::N => b[(l, j)],
            Op::T => b[(j, l)],
            Op::C => b[(j, l)].conj(),
        };
        CMatrix::from_fn(m, n, |i, j| (0..k).map(|l| fa(i, l) * fb(l, j)).sum())
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> CMatrix {
        CMatrix::from_fn(r, c, |i, j| {
            c64(
                ((i * 31 + j * 7) as f64 * 0.173 + seed).sin(),
                ((i * 13 + j * 17) as f64 * 0.311 - seed).cos(),
            )
        })
    }

    #[test]
    fn all_op_combinations_match_naive() {
        // op(A) must be 4x3, op(B) 3x5.
        for &op_a in &[Op::N, Op::T, Op::C] {
            for &op_b in &[Op::N, Op::T, Op::C] {
                let a = match op_a {
                    Op::N => test_mat(4, 3, 0.1),
                    _ => test_mat(3, 4, 0.1),
                };
                let b = match op_b {
                    Op::N => test_mat(3, 5, 0.7),
                    _ => test_mat(5, 3, 0.7),
                };
                let got = matmul_op(&a, op_a, &b, op_b);
                let want = naive(&a, op_a, &b, op_b);
                assert!(
                    got.approx_eq(&want, 1e-12),
                    "mismatch for ({op_a:?},{op_b:?})"
                );
            }
        }
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = test_mat(3, 3, 0.3);
        let b = test_mat(3, 3, 0.9);
        let c0 = test_mat(3, 3, 1.5);
        let mut c = c0.clone();
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        gemm(alpha, &a, Op::N, &b, Op::N, beta, &mut c);
        let want = {
            let mut w = naive(&a, Op::N, &b, Op::N).scaled(alpha);
            w.axpy(beta, &c0);
            // axpy computes w + beta*c0 elementwise in the other order; redo cleanly:
            let mut w2 = c0.scaled(beta);
            w2 += &naive(&a, Op::N, &b, Op::N).scaled(alpha);
            w = w2;
            w
        };
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(5, 5, 0.2);
        let id = CMatrix::identity(5);
        assert!(matmul(&a, &id).approx_eq(&a, 1e-14));
        assert!(matmul(&id, &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn adjoint_product_identity() {
        // (A B)† == B† A†
        let a = test_mat(4, 3, 0.5);
        let b = test_mat(3, 6, 1.1);
        let lhs = matmul(&a, &b).adjoint();
        let rhs = matmul_op(&b, Op::C, &a, Op::C);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn rectangular_shapes() {
        let a = test_mat(7, 2, 0.0);
        let b = test_mat(2, 9, 0.4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (7, 9));
        assert!(c.approx_eq(&naive(&a, Op::N, &b, Op::N), 1e-12));
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = test_mat(3, 3, 0.0);
        let b = test_mat(3, 3, 0.1);
        let c0 = test_mat(3, 3, 0.2);
        let mut c = c0.clone();
        gemm(C64::ZERO, &a, Op::N, &b, Op::N, c64(3.0, 0.0), &mut c);
        assert!(c.approx_eq(&c0.scaled(c64(3.0, 0.0)), 1e-14));
    }

    #[test]
    fn matmul3_associativity() {
        let a = test_mat(3, 4, 0.1);
        let b = test_mat(4, 2, 0.2);
        let c = test_mat(2, 5, 0.3);
        let lhs = matmul3(&a, &b, &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn flop_count_convention() {
        assert_eq!(gemm_flops(12, 12, 12), 8 * 12 * 12 * 12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
