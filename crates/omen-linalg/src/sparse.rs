//! Complex sparse matrices (CSR and CSC) and sparse-dense products.
//!
//! The Hamiltonian off-diagonal blocks in RGF are sparse; §7.1.4 of the
//! paper compares three cuSPARSE strategies:
//!
//! * `CSRMM2` — CSR (left) × dense, supporting `NN`, `NT`, `TN`;
//! * `GEMMI`  — dense × CSC (right), `NN` only;
//! * dense `GEMM` after densification.
//!
//! We implement the same three code paths with the same operation-support
//! matrix so Tables 7 and 8 can be regenerated.

use crate::complex::C64;
use crate::dense::CMatrix;
use crate::gemm::Op;

/// Compressed sparse row complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, `rows + 1` long.
    indptr: Vec<usize>,
    /// Column indices, `nnz` long, sorted within each row.
    indices: Vec<usize>,
    /// Nonzero values.
    data: Vec<C64>,
}

/// Compressed sparse column complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// Column pointer array, `cols + 1` long.
    indptr: Vec<usize>,
    /// Row indices, `nnz` long, sorted within each column.
    indices: Vec<usize>,
    /// Nonzero values.
    data: Vec<C64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, dropping entries with
    /// `|a_ij| <= threshold`.
    pub fn from_dense(a: &CMatrix, threshold: f64) -> Self {
        let (rows, cols) = a.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = a[(i, j)];
                if v.abs() > threshold {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Builds from raw parts, validating the invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<C64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), data.len(), "indices/data length");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr tail");
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be nondecreasing");
        }
        for &j in &indices {
            assert!(j < cols, "column index out of range");
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Fraction of nonzero entries.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Densifies.
    pub fn to_dense(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                out[(i, self.indices[k])] = self.data[k];
            }
        }
        out
    }

    /// Converts to CSC (equivalently: CSR of the transpose, reinterpreted).
    pub fn to_csc(&self) -> CscMatrix {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0usize; nnz];
        let mut data = vec![C64::ZERO; nnz];
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k];
                let dst = cursor[j];
                indices[dst] = i;
                data[dst] = self.data[k];
                cursor[j] += 1;
            }
        }
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Iterates over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, C64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.indptr[i]..self.indptr[i + 1]).map(move |k| (i, self.indices[k], self.data[k]))
        })
    }
}

impl CscMatrix {
    /// Builds a CSC matrix from a dense one, dropping `|a_ij| <= threshold`.
    pub fn from_dense(a: &CMatrix, threshold: f64) -> Self {
        CsrMatrix::from_dense(a, threshold).to_csc()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Densifies.
    pub fn to_dense(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for k in self.indptr[j]..self.indptr[j + 1] {
                out[(self.indices[k], j)] = self.data[k];
            }
        }
        out
    }
}

/// `C = alpha · op(A_csr) · B + beta · C` — the cuSPARSE `csrmm2` analogue.
///
/// Supported `op`: `N`, `T`, `C` on the sparse operand (the paper's NT/TN
/// timings refer to the dense operand's layout; transposing the *dense*
/// operand is handled by the caller staging `B` appropriately).
pub fn csrmm(alpha: C64, a: &CsrMatrix, op_a: Op, b: &CMatrix, beta: C64, c: &mut CMatrix) {
    let (m, k) = match op_a {
        Op::N => (a.rows, a.cols),
        Op::T | Op::C => (a.cols, a.rows),
    };
    assert_eq!(b.rows(), k, "csrmm inner dimension mismatch");
    let n = b.cols();
    assert_eq!((c.rows(), c.cols()), (m, n), "csrmm output shape mismatch");

    if beta == C64::ZERO {
        c.fill_zero();
    } else if beta != C64::ONE {
        c.scale_inplace(beta);
    }

    match op_a {
        Op::N => {
            // C[i, :] += alpha * sum_k A[i,k] B[k, :]
            for i in 0..a.rows {
                for p in a.indptr[i]..a.indptr[i + 1] {
                    let j = a.indices[p];
                    let v = alpha * a.data[p];
                    for col in 0..n {
                        let bv = b[(j, col)];
                        let dst = &mut c[(i, col)];
                        *dst = dst.mul_add(v, bv);
                    }
                }
            }
        }
        Op::T | Op::C => {
            let conj = op_a == Op::C;
            // op(A)[j, i] = A[i, j]: scatter row i of A into row j of C.
            for i in 0..a.rows {
                for p in a.indptr[i]..a.indptr[i + 1] {
                    let j = a.indices[p];
                    let v0 = if conj { a.data[p].conj() } else { a.data[p] };
                    let v = alpha * v0;
                    for col in 0..n {
                        let bv = b[(i, col)];
                        let dst = &mut c[(j, col)];
                        *dst = dst.mul_add(v, bv);
                    }
                }
            }
        }
    }
}

/// `C = alpha · A_dense · B_csc + beta · C` — the cuBLAS `gemmi` analogue
/// (dense × sparse-on-the-right, `NN` only, matching the library's support
/// matrix in Table 7).
pub fn gemmi(alpha: C64, a: &CMatrix, b: &CscMatrix, beta: C64, c: &mut CMatrix) {
    assert_eq!(a.cols(), b.rows, "gemmi inner dimension mismatch");
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols),
        "gemmi output shape mismatch"
    );
    if beta == C64::ZERO {
        c.fill_zero();
    } else if beta != C64::ONE {
        c.scale_inplace(beta);
    }
    // Column j of C = alpha * sum_{k in col j of B} B[k,j] * A[:,k].
    for j in 0..b.cols {
        for p in b.indptr[j]..b.indptr[j + 1] {
            let k = b.indices[p];
            let w = alpha * b.data[p];
            let ak = a.col(k);
            let cj = c.col_mut(j);
            for (ci, &av) in cj.iter_mut().zip(ak.iter()) {
                *ci = ci.mul_add(av, w);
            }
        }
    }
}

/// Flop count of a sparse-dense multiply: `8 · nnz · n` for `n` dense
/// columns (complex MAC = 8 real flops).
pub fn spmm_flops(nnz: usize, dense_cols: usize) -> u64 {
    8 * nnz as u64 * dense_cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::{matmul, matmul_op};

    fn sparse_test_dense(r: usize, c: usize, keep_every: usize) -> CMatrix {
        CMatrix::from_fn(r, c, |i, j| {
            if (i * c + j).is_multiple_of(keep_every) {
                c64((i + 1) as f64 * 0.3, (j as f64) - 1.5)
            } else {
                C64::ZERO
            }
        })
    }

    #[test]
    fn csr_round_trip() {
        let d = sparse_test_dense(7, 5, 3);
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert!(s.to_dense().approx_eq(&d, 0.0));
        assert_eq!(
            s.nnz(),
            d.as_slice().iter().filter(|z| z.abs() > 0.0).count()
        );
    }

    #[test]
    fn csc_round_trip_and_conversion() {
        let d = sparse_test_dense(6, 8, 4);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        let csc = csr.to_csc();
        assert!(csc.to_dense().approx_eq(&d, 0.0));
        assert_eq!(csc.nnz(), csr.nnz());
        let direct = CscMatrix::from_dense(&d, 0.0);
        assert!(direct.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn csrmm_n_matches_dense() {
        let da = sparse_test_dense(5, 4, 2);
        let a = CsrMatrix::from_dense(&da, 0.0);
        let b = CMatrix::from_fn(4, 6, |i, j| c64(i as f64, j as f64 * 0.5));
        let mut c = CMatrix::zeros(5, 6);
        csrmm(C64::ONE, &a, Op::N, &b, C64::ZERO, &mut c);
        assert!(c.approx_eq(&matmul(&da, &b), 1e-12));
    }

    #[test]
    fn csrmm_t_and_c_match_dense() {
        let da = sparse_test_dense(5, 4, 3);
        let a = CsrMatrix::from_dense(&da, 0.0);
        let b = CMatrix::from_fn(5, 3, |i, j| c64(0.2 * i as f64 - 1.0, 0.7 * j as f64));
        for &op in &[Op::T, Op::C] {
            let mut c = CMatrix::zeros(4, 3);
            csrmm(C64::ONE, &a, op, &b, C64::ZERO, &mut c);
            let want = matmul_op(&da, op, &b, Op::N);
            assert!(c.approx_eq(&want, 1e-12), "op {op:?}");
        }
    }

    #[test]
    fn csrmm_alpha_beta() {
        let da = sparse_test_dense(3, 3, 2);
        let a = CsrMatrix::from_dense(&da, 0.0);
        let b = CMatrix::identity(3);
        let c0 = CMatrix::from_fn(3, 3, |i, j| c64((i + j) as f64, 0.0));
        let mut c = c0.clone();
        let alpha = c64(2.0, 1.0);
        let beta = c64(0.0, -1.0);
        csrmm(alpha, &a, Op::N, &b, beta, &mut c);
        let mut want = c0.scaled(beta);
        want += &da.scaled(alpha);
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn gemmi_matches_dense() {
        let a = CMatrix::from_fn(6, 5, |i, j| c64(i as f64 - 2.0, j as f64 * 0.1));
        let db = sparse_test_dense(5, 4, 3);
        let b = CscMatrix::from_dense(&db, 0.0);
        let mut c = CMatrix::zeros(6, 4);
        gemmi(C64::ONE, &a, &b, C64::ZERO, &mut c);
        assert!(c.approx_eq(&matmul(&a, &db), 1e-12));
    }

    #[test]
    fn empty_sparse_matrix() {
        let d = CMatrix::zeros(4, 4);
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.density(), 0.0);
        let b = CMatrix::identity(4);
        let mut c = CMatrix::identity(4);
        csrmm(C64::ONE, &s, Op::N, &b, C64::ONE, &mut c); // beta=1 keeps C
        assert!(c.approx_eq(&CMatrix::identity(4), 0.0));
    }

    #[test]
    fn threshold_drops_small_entries() {
        let d = CMatrix::from_fn(3, 3, |i, j| c64(if i == j { 1.0 } else { 1e-12 }, 0.0));
        let s = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn iter_yields_sorted_triplets() {
        let d = sparse_test_dense(4, 4, 2);
        let s = CsrMatrix::from_dense(&d, 0.0);
        let trips: Vec<_> = s.iter().collect();
        for w in trips.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
        for (i, j, v) in trips {
            assert_eq!(d[(i, j)], v);
        }
    }

    #[test]
    fn flops_model() {
        assert_eq!(spmm_flops(100, 8), 8 * 100 * 8);
    }
}
