//! Double-precision complex scalar type used throughout the solver.
//!
//! The paper's kernels operate on `complex<double>` (cuBLAS `Z` routines).
//! We implement our own small complex type rather than pulling in an external
//! crate: the NEGF solver needs only ring arithmetic, conjugation, absolute
//! value, and the complex exponential for `e^{i k_z}` phase factors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: C64 = c64(0.0, 1.0);

    /// Builds a complex number from a real value.
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2` (avoids the square root).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid premature overflow/underflow.
    #[inline]
    pub fn recip(self) -> Self {
        let C64 { re: a, im: b } = self;
        if a.abs() >= b.abs() {
            let r = b / a;
            let d = a + b * r;
            c64(1.0 / d, -r / d)
        } else {
            let r = a / b;
            let d = a * r + b;
            c64(r / d, -1.0 / d)
        }
    }

    /// `e^{iθ} = cos θ + i sin θ` — unit phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(c, s)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        c64(r * c, r * s)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((m - self.re) * 0.5).max(0.0).sqrt();
        c64(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Fused multiply-add style helper: `self + a * b`.
    #[inline(always)]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        c64(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        c64(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        c64(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, o: C64) -> C64 {
        // Division by reciprocal multiplication (one recip, two muls).
        #[allow(clippy::suspicious_arithmetic_impl)]
        {
            self * o.recip()
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: f64) -> C64 {
        c64(self.re + o, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: f64) -> C64 {
        c64(self.re - o, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: f64) -> C64 {
        c64(self.re * o, self.im * o)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, o: f64) -> C64 {
        c64(self.re / o, self.im / o)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        c64(self * o.re, self * o.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl DivAssign for C64 {
    #[inline(always)]
    fn div_assign(&mut self, o: C64) {
        *self = *self / o;
    }
}

impl MulAssign<f64> for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: f64) {
        self.re *= o;
        self.im *= o;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ring_arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert_eq!(a + b, c64(-2.0, 2.5));
        assert_eq!(a - b, c64(4.0, 1.5));
        assert_eq!(a * b, c64(-3.0 - 2.0 * 0.5, 0.5 + -6.0));
        assert_eq!(-a, c64(-1.0, -2.0));
    }

    #[test]
    fn division_and_recip() {
        let a = c64(3.0, -4.0);
        assert!(close(a * a.recip(), C64::ONE, 1e-15));
        let b = c64(0.5, 2.0);
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn recip_extreme_magnitudes() {
        // Smith's algorithm must not overflow for values near f64 limits.
        let a = c64(1e300, 1e300);
        let r = a.recip();
        assert!(r.is_finite());
        assert!(close(a * r, C64::ONE, 1e-12));
    }

    #[test]
    fn conj_and_norms() {
        let a = c64(1.5, -2.5);
        assert_eq!(a.conj(), c64(1.5, 2.5));
        assert_eq!(a.norm_sqr(), 1.5 * 1.5 + 2.5 * 2.5);
        assert!((a.abs() - a.norm_sqr().sqrt()).abs() < 1e-15);
        // |z|^2 == z * conj(z)
        assert!(close(a * a.conj(), C64::from_re(a.norm_sqr()), 1e-12));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let th = k as f64 * 0.41;
            let z = C64::cis(th);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!(close(z, c64(th.cos(), th.sin()), 1e-15));
        }
    }

    #[test]
    fn exp_matches_real_exp() {
        let z = c64(0.3, 0.0).exp();
        assert!((z.re - 0.3f64.exp()).abs() < 1e-14);
        assert!(z.im.abs() < 1e-14);
        // e^{iπ} = -1
        assert!(close(
            c64(0.0, std::f64::consts::PI).exp(),
            c64(-1.0, 0.0),
            1e-14
        ));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(2.0, 3.0),
            c64(-1.0, 0.5),
            c64(0.0, -4.0),
            c64(-2.0, -0.1),
        ] {
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z:?})^2 = {:?}", r * r);
        }
    }

    #[test]
    fn sum_iterator() {
        let v = [c64(1.0, 1.0); 10];
        let s: C64 = v.iter().sum();
        assert_eq!(s, c64(10.0, 10.0));
    }

    #[test]
    fn mul_add_matches_expanded() {
        let acc = c64(0.25, -0.5);
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 3.0);
        assert!(close(acc.mul_add(a, b), acc + a * b, 1e-15));
    }
}
