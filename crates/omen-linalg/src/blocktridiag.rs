//! Block-tridiagonal matrix container.
//!
//! `H`, `S` and `Φ` are block-tridiagonal when the device is partitioned
//! into `bnum` slabs along transport (§4): only adjacent slabs couple. The
//! RGF algorithm walks these blocks; the dense reference solver assembles
//! them into a full matrix.

use crate::complex::C64;
use crate::dense::CMatrix;

/// A square block-tridiagonal matrix with uniform block size.
#[derive(Clone, Debug)]
pub struct BlockTriDiag {
    /// Number of diagonal blocks (`bnum` in the paper).
    nb: usize,
    /// Size of each (square) block.
    bs: usize,
    /// Diagonal blocks `A[n][n]`, `nb` of them.
    pub diag: Vec<CMatrix>,
    /// Super-diagonal blocks `A[n][n+1]`, `nb − 1` of them.
    pub upper: Vec<CMatrix>,
    /// Sub-diagonal blocks `A[n+1][n]`, `nb − 1` of them.
    pub lower: Vec<CMatrix>,
}

impl BlockTriDiag {
    /// Creates a zero block-tridiagonal matrix with `nb` blocks of size `bs`.
    pub fn zeros(nb: usize, bs: usize) -> Self {
        assert!(nb >= 1, "need at least one block");
        BlockTriDiag {
            nb,
            bs,
            diag: vec![CMatrix::zeros(bs, bs); nb],
            upper: vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)],
            lower: vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)],
        }
    }

    /// Builds from explicit block vectors.
    pub fn from_blocks(diag: Vec<CMatrix>, upper: Vec<CMatrix>, lower: Vec<CMatrix>) -> Self {
        let nb = diag.len();
        assert!(nb >= 1, "need at least one diagonal block");
        let bs = diag[0].rows();
        for d in &diag {
            assert_eq!(d.shape(), (bs, bs), "inconsistent diagonal block shape");
        }
        assert_eq!(upper.len(), nb - 1, "need nb-1 upper blocks");
        assert_eq!(lower.len(), nb - 1, "need nb-1 lower blocks");
        for u in upper.iter().chain(lower.iter()) {
            assert_eq!(u.shape(), (bs, bs), "inconsistent off-diagonal block shape");
        }
        BlockTriDiag {
            nb,
            bs,
            diag,
            upper,
            lower,
        }
    }

    /// Number of diagonal blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.nb
    }

    /// Block size.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.bs
    }

    /// Full matrix dimension `nb * bs`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.nb * self.bs
    }

    /// Assembles the dense representation (for reference solves and tests).
    pub fn to_dense(&self) -> CMatrix {
        let n = self.dim();
        let mut out = CMatrix::zeros(n, n);
        for b in 0..self.nb {
            out.set_block(b * self.bs, b * self.bs, &self.diag[b]);
        }
        for b in 0..self.nb - 1 {
            out.set_block(b * self.bs, (b + 1) * self.bs, &self.upper[b]);
            out.set_block((b + 1) * self.bs, b * self.bs, &self.lower[b]);
        }
        out
    }

    /// `true` if the assembled matrix is Hermitian within `tol`
    /// (each diagonal block Hermitian and `lower[b] == upper[b]†`).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.diag.iter().all(|d| d.is_hermitian(tol))
            && self
                .upper
                .iter()
                .zip(self.lower.iter())
                .all(|(u, l)| l.approx_eq(&u.adjoint(), tol))
    }

    /// Returns `alpha*self + beta*other` blockwise.
    pub fn linear_comb(&self, alpha: C64, other: &BlockTriDiag, beta: C64) -> BlockTriDiag {
        assert_eq!(self.nb, other.nb);
        assert_eq!(self.bs, other.bs);
        let comb = |a: &CMatrix, b: &CMatrix| {
            let mut out = a.scaled(alpha);
            out += &b.scaled(beta);
            out
        };
        BlockTriDiag {
            nb: self.nb,
            bs: self.bs,
            diag: self
                .diag
                .iter()
                .zip(other.diag.iter())
                .map(|(a, b)| comb(a, b))
                .collect(),
            upper: self
                .upper
                .iter()
                .zip(other.upper.iter())
                .map(|(a, b)| comb(a, b))
                .collect(),
            lower: self
                .lower
                .iter()
                .zip(other.lower.iter())
                .map(|(a, b)| comb(a, b))
                .collect(),
        }
    }

    /// Adds `m` to diagonal block `b` in place.
    pub fn add_to_diag(&mut self, b: usize, m: &CMatrix) {
        self.diag[b] += m;
    }

    /// Largest element magnitude over all blocks.
    pub fn max_abs(&self) -> f64 {
        self.diag
            .iter()
            .chain(self.upper.iter())
            .chain(self.lower.iter())
            .map(|m| m.max_abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn sample(nb: usize, bs: usize) -> BlockTriDiag {
        let mut m = BlockTriDiag::zeros(nb, bs);
        for b in 0..nb {
            m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
                if i == j {
                    c64(2.0 + b as f64, 0.0)
                } else {
                    c64(0.1, 0.05)
                }
            });
            m.diag[b].hermitianize();
        }
        for b in 0..nb - 1 {
            m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| c64(-(i as f64) * 0.1, j as f64 * 0.2));
            m.lower[b] = m.upper[b].adjoint();
        }
        m
    }

    #[test]
    fn dense_assembly_places_blocks() {
        let m = sample(3, 2);
        let d = m.to_dense();
        assert_eq!(d.shape(), (6, 6));
        assert_eq!(d[(0, 0)], m.diag[0][(0, 0)]);
        assert_eq!(d[(2, 3)], m.diag[1][(0, 1)]);
        assert_eq!(d[(0, 2)], m.upper[0][(0, 0)]);
        assert_eq!(d[(2, 0)], m.lower[0][(0, 0)]);
        // Far-off-diagonal entries are zero.
        assert_eq!(d[(0, 4)], C64::ZERO);
        assert_eq!(d[(5, 0)], C64::ZERO);
    }

    #[test]
    fn hermitian_detection() {
        let m = sample(4, 3);
        assert!(m.is_hermitian(1e-14));
        assert!(m.to_dense().is_hermitian(1e-14));
        let mut broken = m.clone();
        broken.lower[0][(0, 0)] += c64(0.5, 0.0);
        assert!(!broken.is_hermitian(1e-14));
    }

    #[test]
    fn linear_combination() {
        let a = sample(3, 2);
        let b = sample(3, 2);
        let c = a.linear_comb(c64(2.0, 0.0), &b, c64(-1.0, 0.0));
        // 2a - b == a when a == b.
        assert!(c.to_dense().approx_eq(&a.to_dense(), 1e-14));
    }

    #[test]
    fn single_block_edge_case() {
        let m = BlockTriDiag::zeros(1, 4);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.upper.len(), 0);
        assert!(m.is_hermitian(0.0));
        assert_eq!(m.to_dense().shape(), (4, 4));
    }

    #[test]
    fn max_abs_spans_all_blocks() {
        let mut m = BlockTriDiag::zeros(3, 2);
        m.upper[1][(1, 1)] = c64(0.0, -7.5);
        assert_eq!(m.max_abs(), 7.5);
    }
}
