//! Software IEEE 754 binary16 (`f16`) emulation.
//!
//! The paper's mixed-precision SSE kernel (§5.4) stores the normalized
//! tensors in half precision and multiplies them on Tensor Cores, which
//! compute `f16 × f16` products with at-least-`f32` accumulation. We have no
//! tensor cores; what matters for reproducing Fig. 7 is the *storage*
//! precision: values are rounded to binary16 (round-to-nearest-even),
//! sub-`~6e-8` magnitudes flush toward zero, and `|x| > 65504` must be
//! clamped beforehand. This module provides the bit-exact conversions.

/// An IEEE 754 binary16 value stored as raw bits.
///
/// Arithmetic is not implemented directly on `F16`; kernels convert to `f32`,
/// multiply, and accumulate in `f64` — mirroring Tensor Core semantics.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
#[repr(transparent)]
pub struct F16(pub u16);

/// Largest finite binary16 value (`65504.0`).
pub const F16_MAX: f64 = 65504.0;
/// Smallest positive normal binary16 value (`2^-14`).
pub const F16_MIN_POSITIVE: f64 = 6.103515625e-5;
/// Smallest positive subnormal binary16 value (`2^-24`).
pub const F16_MIN_SUBNORMAL: f64 = 5.960464477539063e-8;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);

    /// Converts from `f32` with round-to-nearest-even, the IEEE default
    /// (and what GPU conversion instructions implement).
    #[inline]
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Converts from `f64` (via `f64 -> f32 -> f16`; double rounding is
    /// acceptable here because the normalization step keeps magnitudes far
    /// from the `f32` rounding boundary cases that matter).
    #[inline]
    pub fn from_f64(value: f64) -> F16 {
        F16::from_f32(value as f32)
    }

    /// Widens to `f32` exactly (every binary16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` for positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

/// Bit-exact `f32 -> f16` conversion with round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN; preserve NaN-ness with a quiet payload bit.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }

    // Unbiased exponent.
    let e = exp - 127;

    if e > 15 {
        // Overflows binary16 range -> infinity.
        return sign | 0x7C00;
    }

    if e >= -14 {
        // Normal range. 10 mantissa bits; round-to-nearest-even on the
        // remaining 13 bits.
        let half_exp = ((e + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let round_bits = mant & 0x1FFF;
        let mut out = sign | half_exp | half_mant;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct behaviour
        }
        return out;
    }

    if e >= -25 {
        // Subnormal range: implicit leading 1 becomes explicit, shifted.
        let full_mant = mant | 0x0080_0000;
        let shift = (-14 - e) as u32 + 13;
        let half_mant = (full_mant >> shift) as u16;
        let rem = full_mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | half_mant;
        if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }

    // Magnitude too small even for subnormals: flush to signed zero.
    sign
}

/// Bit-exact `f16 -> f32` conversion.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = mant · 2^-24. Normalize: with `s` shifts
            // until the implicit bit (bit 10) is set, the unbiased exponent
            // is −14 − s, so the f32 exponent field is 113 − s.
            let mut s = 0u32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                s += 1;
            }
            let frac = (m & 0x03FF) << 13;
            let expf = (113 - s) << 23;
            sign | expf | frac
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f64` value through binary16 storage precision and back.
///
/// This is the "store to half" operation the mixed-precision SSE kernel uses
/// on every tensor element after normalization.
#[inline]
pub fn round_through_f16(value: f64) -> f64 {
    F16::from_f64(value).to_f64()
}

/// Clamps a value into the finite binary16 range, preserving sign, as the
/// paper does to "avoid under/overflow" (§5.4). Values whose magnitude
/// exceeds `F16_MAX` are clamped; values that underflow remain (they round
/// to zero/subnormal on conversion — exactly the error source Fig. 7
/// attributes to the unnormalized variant).
#[inline]
pub fn clamp_to_f16_range(value: f64) -> f64 {
    value.clamp(-F16_MAX, F16_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048i32..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "integer {i} must be exact");
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(1.0), F16(0x3C00));
        assert_eq!(F16::from_f32(-2.0), F16(0xC000));
        assert_eq!(F16::from_f32(65504.0), F16(0x7BFF));
        assert_eq!(F16::from_f32(6.1035156e-5).0, 0x0400); // min normal
        assert_eq!(F16::from_f32(5.9604645e-8).0, 0x0001); // min subnormal
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds up past max
        assert!(F16::from_f32(1e30).is_infinite());
        assert!(F16::from_f32(-1e30).is_infinite());
        // But the clamped value stays finite.
        assert!(!F16::from_f64(clamp_to_f16_range(1e30)).is_infinite());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        let tiny = 1e-12f32;
        assert_eq!(F16::from_f32(tiny), F16::ZERO);
        let tiny_neg = -1e-12f32;
        assert_eq!(F16::from_f32(tiny_neg).0, 0x8000); // negative zero
        assert_eq!(F16::from_f32(tiny_neg).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 value
        // 1 + 2^-10; ties-to-even keeps 1.0 (even mantissa).
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Just above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn infinity_round_trips() {
        assert_eq!(F16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn relative_error_within_half_ulp_for_normals() {
        // binary16 has 11 significand bits -> relative error <= 2^-11.
        let eps = 2.0f64.powi(-11);
        let mut x = 1.0e-4f64;
        while x < 6.0e4 {
            let r = round_through_f16(x);
            assert!(
                ((r - x) / x).abs() <= eps,
                "x={x}, r={r}, relerr={}",
                ((r - x) / x).abs()
            );
            x *= 1.7;
        }
    }

    #[test]
    fn subnormal_round_trip_exact() {
        // All 1024 subnormal bit patterns widen and re-narrow exactly.
        for bits in 1u16..0x0400 {
            let f = f16_bits_to_f32(bits);
            assert_eq!(f32_to_f16_bits(f), bits, "subnormal bits {bits:#06x}");
        }
    }

    #[test]
    fn all_finite_f16_round_trip_through_f32() {
        for bits in 0u16..=0xFFFF {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }
}
