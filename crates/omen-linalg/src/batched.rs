//! Strided-batched small matrix multiplication (SBSMM).
//!
//! Step ❸ of the paper's SSE transformation (Fig. 6) aggregates thousands of
//! `Norb × Norb` multiplications into one strided-batched GEMM. cuBLAS'
//! `ZgemmStridedBatched` pads small problems heavily (85.7% of peak but only
//! ~6% *useful* flops, Table 9); the paper's custom DaCe tasklet (SBSMM)
//! avoids padding and is 5.76× faster. We reproduce both strategies:
//!
//! * [`sbsmm`] — the specialized no-padding kernel (DaCe analogue);
//! * [`sbsmm_padded`] — a vendor-library stand-in that rounds every operand
//!   up to a tuning size (default 16) and performs the full padded product,
//!   wasting the same ratio of flops cuBLAS does on 12×12 inputs.

// The batched entry points mirror BLAS `gemmStridedBatched` signatures.
#![allow(clippy::too_many_arguments)]

use crate::complex::C64;
use crate::dense::CMatrix;
use crate::gemm::{gemm, Op};
use rayon::prelude::*;

/// Dimensions of one batch item: `C (m×n) = A (m×k) · B (k×n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchDims {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl BatchDims {
    /// Square `n × n` batch item.
    pub fn square(n: usize) -> Self {
        BatchDims { m: n, n, k: n }
    }

    /// Useful flops per batch item (8 real flops per complex MAC).
    pub fn flops(&self) -> u64 {
        8 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// Strided-batched layout descriptor for one operand: element `b` of the
/// batch starts at `offset + b * stride` in the backing slice, stored
/// column-major with the leading dimension equal to the row count.
#[derive(Clone, Copy, Debug)]
pub struct Strides {
    /// Distance in elements between consecutive batch items.
    pub a: usize,
    /// Distance for the `B` operand.
    pub b: usize,
    /// Distance for the `C` operand.
    pub c: usize,
}

impl Strides {
    /// Dense packing: every operand stride equals its matrix size.
    pub fn packed(dims: BatchDims) -> Self {
        Strides {
            a: dims.m * dims.k,
            b: dims.k * dims.n,
            c: dims.m * dims.n,
        }
    }
}

/// The specialized strided-batched small-matrix multiply:
/// `C[b] = alpha · A[b] · B[b] + beta · C[b]` for `b < batch`.
///
/// No padding is performed; the kernel maximizes locality by keeping the
/// innermost loop contiguous down columns (column-major operands).
pub fn sbsmm(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    for idx in 0..batch {
        let av = &a[idx * strides.a..idx * strides.a + dims.m * dims.k];
        let bv = &b[idx * strides.b..idx * strides.b + dims.k * dims.n];
        let cv = &mut c[idx * strides.c..idx * strides.c + dims.m * dims.n];
        small_gemm(dims, alpha, av, bv, beta, cv);
    }
}

/// Rayon-parallel version of [`sbsmm`]; batch items are independent so they
/// partition perfectly across worker threads (the GPU analogy: one thread
/// block per batch item).
pub fn sbsmm_par(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    // Only safe to parallelize when output items do not alias.
    assert!(
        strides.c >= dims.m * dims.n,
        "sbsmm_par requires non-overlapping C items"
    );
    c.par_chunks_mut(strides.c)
        .take(batch)
        .enumerate()
        .for_each(|(idx, cv)| {
            let av = &a[idx * strides.a..idx * strides.a + dims.m * dims.k];
            let bv = &b[idx * strides.b..idx * strides.b + dims.k * dims.n];
            small_gemm(dims, alpha, av, bv, beta, &mut cv[..dims.m * dims.n]);
        });
}

/// One small column-major GEMM on raw slices (no `CMatrix` wrapper, no
/// allocation). Kept `#[inline]` so the batch loop fuses.
#[inline]
pub fn small_gemm(dims: BatchDims, alpha: C64, a: &[C64], b: &[C64], beta: C64, c: &mut [C64]) {
    let BatchDims { m, n, k } = dims;
    if beta == C64::ZERO {
        c.fill(C64::ZERO);
    } else if beta != C64::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    for j in 0..n {
        let cj = &mut c[j * m..(j + 1) * m];
        for l in 0..k {
            let w = alpha * b[j * k + l];
            if w == C64::ZERO {
                continue;
            }
            let al = &a[l * m..(l + 1) * m];
            for (ci, &ail) in cj.iter_mut().zip(al.iter()) {
                *ci = ci.mul_add(ail, w);
            }
        }
    }
}

/// Vendor-library stand-in: pads every operand to `pad × pad` (cuBLAS'
/// internal tile size for the small-problem path) and runs the full padded
/// multiplication. Numerically identical to [`sbsmm`] but performs
/// `(pad/m)·(pad/n)·(pad/k)` times more work — reproducing the
/// useful-vs-peak gap in Table 9.
pub fn sbsmm_padded(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
    pad: usize,
) {
    assert!(
        pad >= dims.m && pad >= dims.n && pad >= dims.k,
        "pad too small"
    );
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    let mut pa = CMatrix::zeros(pad, pad);
    let mut pb = CMatrix::zeros(pad, pad);
    let mut pc = CMatrix::zeros(pad, pad);
    for idx in 0..batch {
        pa.fill_zero();
        pb.fill_zero();
        pc.fill_zero();
        let av = &a[idx * strides.a..];
        let bv = &b[idx * strides.b..];
        for j in 0..dims.k {
            for i in 0..dims.m {
                pa[(i, j)] = av[j * dims.m + i];
            }
        }
        for j in 0..dims.n {
            for i in 0..dims.k {
                pb[(i, j)] = bv[j * dims.k + i];
            }
        }
        gemm(C64::ONE, &pa, Op::N, &pb, Op::N, C64::ZERO, &mut pc);
        // C = beta*C + alpha*P, matching sbsmm's semantics exactly.
        let cv = &mut c[idx * strides.c..idx * strides.c + dims.m * dims.n];
        for j in 0..dims.n {
            for i in 0..dims.m {
                let out = &mut cv[j * dims.m + i];
                *out = *out * beta + alpha * pc[(i, j)];
            }
        }
    }
}

/// Total *performed* flops of the padded strategy.
pub fn padded_flops(pad: usize, batch: usize) -> u64 {
    8 * (pad as u64).pow(3) * batch as u64
}

fn check_bounds(
    dims: BatchDims,
    batch: usize,
    alen: usize,
    blen: usize,
    clen: usize,
    strides: Strides,
) {
    if batch == 0 {
        return;
    }
    let last = batch - 1;
    assert!(
        last * strides.a + dims.m * dims.k <= alen,
        "A slice too short for batch"
    );
    assert!(
        last * strides.b + dims.k * dims.n <= blen,
        "B slice too short for batch"
    );
    assert!(
        last * strides.c + dims.m * dims.n <= clen,
        "C slice too short for batch"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::matmul;

    fn fill(n: usize, seed: u64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + seed as f64 * 0.37).sin();
                let y = (i as f64 * 1.7 - seed as f64).cos();
                c64(x, y)
            })
            .collect()
    }

    fn reference(dims: BatchDims, batch: usize, a: &[C64], b: &[C64], s: Strides) -> Vec<C64> {
        let mut out = vec![C64::ZERO; batch * s.c];
        for idx in 0..batch {
            let am = CMatrix::from_vec(
                dims.m,
                dims.k,
                a[idx * s.a..idx * s.a + dims.m * dims.k].to_vec(),
            );
            let bm = CMatrix::from_vec(
                dims.k,
                dims.n,
                b[idx * s.b..idx * s.b + dims.k * dims.n].to_vec(),
            );
            let cm = matmul(&am, &bm);
            out[idx * s.c..idx * s.c + dims.m * dims.n].copy_from_slice(cm.as_slice());
        }
        out
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn sbsmm_matches_reference() {
        let dims = BatchDims {
            m: 12,
            n: 12,
            k: 12,
        };
        let s = Strides::packed(dims);
        let batch = 17;
        let a = fill(batch * s.a, 1);
        let b = fill(batch * s.b, 2);
        let mut c = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        let want = reference(dims, batch, &a, &b, s);
        assert!(max_err(&c, &want) < 1e-12);
    }

    #[test]
    fn sbsmm_par_matches_serial() {
        let dims = BatchDims { m: 8, n: 5, k: 9 };
        let s = Strides::packed(dims);
        let batch = 33;
        let a = fill(batch * s.a, 3);
        let b = fill(batch * s.b, 4);
        let mut c1 = vec![C64::ZERO; batch * s.c];
        let mut c2 = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c1, s);
        sbsmm_par(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c2, s);
        assert!(max_err(&c1, &c2) == 0.0, "parallel must be bit-identical");
    }

    #[test]
    fn padded_matches_specialized() {
        let dims = BatchDims {
            m: 12,
            n: 12,
            k: 12,
        };
        let s = Strides::packed(dims);
        let batch = 5;
        let a = fill(batch * s.a, 7);
        let b = fill(batch * s.b, 8);
        let mut c1 = vec![C64::ZERO; batch * s.c];
        let mut c2 = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c1, s);
        sbsmm_padded(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c2, s, 16);
        assert!(max_err(&c1, &c2) < 1e-12);
    }

    #[test]
    fn accumulation_beta_one() {
        let dims = BatchDims::square(6);
        let s = Strides::packed(dims);
        let batch = 3;
        let a = fill(batch * s.a, 10);
        let b = fill(batch * s.b, 11);
        let c0 = fill(batch * s.c, 12);
        let mut c = c0.clone();
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ONE, &mut c, s);
        let prod = reference(dims, batch, &a, &b, s);
        for i in 0..c.len() {
            assert!((c[i] - (c0[i] + prod[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn interleaved_strides() {
        // Items spaced twice as far apart as their size: gaps are untouched.
        let dims = BatchDims::square(4);
        let base = Strides::packed(dims);
        let s = Strides {
            a: base.a * 2,
            b: base.b * 2,
            c: base.c * 2,
        };
        let batch = 4;
        let a = fill(batch * s.a, 20);
        let b = fill(batch * s.b, 21);
        let mut c = vec![c64(9.0, 9.0); batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        // Gap elements untouched:
        assert_eq!(c[base.c], c64(9.0, 9.0));
        // First item correct:
        let want = reference(dims, 1, &a[..base.a], &b[..base.b], base);
        assert!(max_err(&c[..base.c], &want[..base.c]) < 1e-12);
    }

    #[test]
    fn flop_accounting() {
        let dims = BatchDims::square(12);
        assert_eq!(dims.flops(), 8 * 1728);
        assert_eq!(padded_flops(16, 10), 8 * 4096 * 10);
        // Useful fraction for 12^3 padded to 16^3 is (12/16)^3 ≈ 42%:
        let useful = dims.flops() as f64 * 10.0 / padded_flops(16, 10) as f64;
        assert!((useful - 0.421875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "A slice too short")]
    fn bounds_checked() {
        let dims = BatchDims::square(4);
        let s = Strides::packed(dims);
        let a = vec![C64::ZERO; 10];
        let b = vec![C64::ZERO; 64];
        let mut c = vec![C64::ZERO; 64];
        sbsmm(dims, 4, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
    }
}
