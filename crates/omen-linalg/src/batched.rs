//! Strided-batched small matrix multiplication (SBSMM).
//!
//! Step ❸ of the paper's SSE transformation (Fig. 6) aggregates thousands of
//! `Norb × Norb` multiplications into one strided-batched GEMM. cuBLAS'
//! `ZgemmStridedBatched` pads small problems heavily (85.7% of peak but only
//! ~6% *useful* flops, Table 9); the paper's custom DaCe tasklet (SBSMM)
//! avoids padding and is 5.76× faster. We reproduce both strategies:
//!
//! * [`sbsmm`] / [`sbsmm_par`] — the specialized no-padding kernel (DaCe
//!   analogue), routed through the **packed split-complex micro-kernel**;
//! * [`sbsmm_padded`] — a vendor-library stand-in that rounds every operand
//!   up to a tuning size (default 16) and performs the full padded product,
//!   wasting the same ratio of flops cuBLAS does on 12×12 inputs.
//!
//! # Batch-level packing
//!
//! The production batched path reuses the register-tiled `MR × NR` FMA
//! micro-kernel built for the dense [`mod@crate::gemm`] (runtime AVX2+FMA
//! dispatch, portable fallback, `OMEN_FORCE_SCALAR` override). Operands are
//! packed once into *split-complex* micro-panels — separate real and
//! imaginary `f64` planes, `MR`-row panels for `A` and `NR`-column panels
//! for `B`, k-major within a panel — and the kernel sweeps the panels over
//! all batch items. Packing is amortized at the batch level:
//!
//! * a **stride-0 operand** (the transformed SSE kernel's shapes: the
//!   gradient `∇H` shared as `A` in stage A, the `∇H·D` block shared as
//!   `B` in stage C) is packed exactly once per call;
//! * a caller can go further and pack a shared `B` once into a [`PackedB`]
//!   and sweep it across *many* calls via [`sbsmm_pb`] / [`small_gemm_pb`]
//!   (stage C packs each `∇H·D` block once per `(pair, i, qz, ω)` tuple
//!   and reuses it across the whole `kz` loop);
//! * pack buffers live in a [`BatchArena`] — thread-local by default, or
//!   drawn from a [`crate::workspace::Workspace`] via
//!   [`crate::workspace::Workspace::batch_arena`] — so the warm batched
//!   path performs **zero heap allocations** (asserted by the
//!   `integration_alloc` regression test).
//!
//! Items too small to amortize packing (see [`use_packed_kernel`]) run the
//! retained scalar loop [`sbsmm_scalar`] / [`small_gemm`], which also
//! serves as the correctness oracle for the property tests.

// The batched entry points mirror BLAS `gemmStridedBatched` signatures.
#![allow(clippy::too_many_arguments)]

use crate::complex::{c64, C64};
use crate::dense::CMatrix;
use crate::gemm::{fma_available, gemm, run_micro_kernel, Op, MR, NR};
use rayon::prelude::*;
use std::cell::RefCell;

/// Dimensions of one batch item: `C (m×n) = A (m×k) · B (k×n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchDims {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl BatchDims {
    /// Square `n × n` batch item.
    pub fn square(n: usize) -> Self {
        BatchDims { m: n, n, k: n }
    }

    /// Useful flops per batch item (8 real flops per complex MAC).
    pub fn flops(&self) -> u64 {
        8 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// Strided-batched layout descriptor for one operand: element `b` of the
/// batch starts at `offset + b * stride` in the backing slice, stored
/// column-major with the leading dimension equal to the row count.
#[derive(Clone, Copy, Debug)]
pub struct Strides {
    /// Distance in elements between consecutive batch items.
    pub a: usize,
    /// Distance for the `B` operand.
    pub b: usize,
    /// Distance for the `C` operand.
    pub c: usize,
}

impl Strides {
    /// Dense packing: every operand stride equals its matrix size.
    pub fn packed(dims: BatchDims) -> Self {
        Strides {
            a: dims.m * dims.k,
            b: dims.k * dims.n,
            c: dims.m * dims.n,
        }
    }
}

/// Typed error of [`sbsmm_par`]: the `C` stride is smaller than one output
/// item, so parallel batch items would alias the same output elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrideOverlap {
    /// The offending `C` stride.
    pub stride_c: usize,
    /// The output item size `m * n` it must be at least.
    pub item_len: usize,
}

impl std::fmt::Display for StrideOverlap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sbsmm_par requires non-overlapping C items: stride {} < item size {}",
            self.stride_c, self.item_len
        )
    }
}

impl std::error::Error for StrideOverlap {}

// ---------------------------------------------------------------------------
// Split-complex micro-panel packing.
// ---------------------------------------------------------------------------

/// A `k × n` matrix packed once into split-complex `NR`-column micro-panels,
/// ready to be swept by the micro-kernel against many `A` operands
/// ([`sbsmm_pb`], [`small_gemm_pb`]). Reusing a `PackedB` across calls
/// amortizes the packing of a shared right-hand operand (the transformed
/// SSE kernel's stage C reuses each `∇H·D` block across the whole `kz`
/// loop and all four Σ updates).
#[derive(Default)]
pub struct PackedB {
    pub(crate) re: Vec<f64>,
    pub(crate) im: Vec<f64>,
    pub(crate) k: usize,
    pub(crate) n: usize,
}

impl PackedB {
    /// An empty pack; buffers materialize on first [`PackedB::pack`].
    pub fn empty() -> Self {
        PackedB::default()
    }

    /// Packs the column-major `k × n` matrix `b` into split-complex
    /// `NR`-panels, reusing this pack's buffers (allocation-free once they
    /// are large enough).
    pub fn pack(&mut self, k: usize, n: usize, b: &[C64]) {
        assert!(b.len() >= k * n, "PackedB::pack: operand too short");
        self.k = k;
        self.n = n;
        let np = n.div_ceil(NR);
        let len = np * NR * k;
        self.re.resize(len, 0.0);
        self.im.resize(len, 0.0);
        pack_b_panels(b, k, n, &mut self.re, &mut self.im);
    }

    /// Logical shape `(k, n)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }
}

/// Packs column-major `m × k` `a` into split-complex `MR`-row panels
/// (k-major within a panel), zero-padding tail rows. `out_*` must hold
/// `ceil(m/MR) * MR * k` elements.
pub(crate) fn pack_a_panels(a: &[C64], m: usize, k: usize, out_re: &mut [f64], out_im: &mut [f64]) {
    omen_trace::add(
        omen_trace::Counter::BytesPacked,
        (m * k * std::mem::size_of::<C64>()) as u64,
    );
    let mp = m.div_ceil(MR);
    debug_assert!(out_re.len() >= mp * MR * k && out_im.len() >= mp * MR * k);
    for ip in 0..mp {
        let ir = ip * MR;
        let rows = MR.min(m - ir);
        let base = ip * k * MR;
        for p in 0..k {
            let col = &a[p * m..p * m + m];
            let o = base + p * MR;
            for i in 0..rows {
                let z = col[ir + i];
                out_re[o + i] = z.re;
                out_im[o + i] = z.im;
            }
            for i in rows..MR {
                out_re[o + i] = 0.0;
                out_im[o + i] = 0.0;
            }
        }
    }
}

/// Packs column-major `k × n` `b` into split-complex `NR`-column panels
/// (k-major within a panel), zero-padding tail columns. `out_*` must hold
/// `ceil(n/NR) * NR * k` elements.
pub(crate) fn pack_b_panels(b: &[C64], k: usize, n: usize, out_re: &mut [f64], out_im: &mut [f64]) {
    omen_trace::add(
        omen_trace::Counter::BytesPacked,
        (k * n * std::mem::size_of::<C64>()) as u64,
    );
    let np = n.div_ceil(NR);
    debug_assert!(out_re.len() >= np * NR * k && out_im.len() >= np * NR * k);
    for jp in 0..np {
        let jr = jp * NR;
        let cols = NR.min(n - jr);
        let base = jp * k * NR;
        for p in 0..k {
            let o = base + p * NR;
            for j in 0..cols {
                let z = b[(jr + j) * k + p];
                out_re[o + j] = z.re;
                out_im[o + j] = z.im;
            }
            for j in cols..NR {
                out_re[o + j] = 0.0;
                out_im[o + j] = 0.0;
            }
        }
    }
}

/// Sweeps the register-tiled micro-kernel over pre-packed split-complex
/// panels of one item: `C += alpha · A · B` with `C` column-major `m × n`.
/// `a_*` hold `ceil(m/MR)` panels of `k × MR`, `b_*` hold `ceil(n/NR)`
/// panels of `k × NR` (zero-padded edges).
pub(crate) fn sweep_tiles(
    fma: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: C64,
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    c: &mut [C64],
) {
    let mp = m.div_ceil(MR);
    let np = n.div_ceil(NR);
    let plain = alpha == C64::ONE;
    for jp in 0..np {
        let jr = jp * NR;
        let nr_eff = NR.min(n - jr);
        let bo = jp * k * NR;
        let br = &b_re[bo..bo + k * NR];
        let bi = &b_im[bo..bo + k * NR];
        for ip in 0..mp {
            let ir = ip * MR;
            let mr_eff = MR.min(m - ir);
            let ao = ip * k * MR;
            let ar = &a_re[ao..ao + k * MR];
            let ai = &a_im[ao..ao + k * MR];
            let mut acc_re = [0.0f64; MR * NR];
            let mut acc_im = [0.0f64; MR * NR];
            run_micro_kernel(fma, ar, ai, br, bi, &mut acc_re, &mut acc_im);
            for j in 0..nr_eff {
                let cj = &mut c[(jr + j) * m..(jr + j) * m + m];
                for i in 0..mr_eff {
                    let t = j * MR + i;
                    if plain {
                        cj[ir + i] += c64(acc_re[t], acc_im[t]);
                    } else {
                        cj[ir + i] += alpha * c64(acc_re[t], acc_im[t]);
                    }
                }
            }
        }
    }
}

/// Applies the `beta` prescale of one output item (`fill` / scale / no-op).
#[inline]
fn scale_c(beta: C64, c: &mut [C64]) {
    if beta == C64::ZERO {
        c.fill(C64::ZERO);
    } else if beta != C64::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
}

/// `true` when the packed micro-kernel path pays off for this item shape:
/// the item must be large enough to amortize packing, and the `MR × NR`
/// zero-padding must not inflate the tile work beyond 2× the useful flops
/// (a `12 × 1` sliver would spend 4× the flops on padded lanes).
pub fn use_packed_kernel(dims: BatchDims) -> bool {
    let BatchDims { m, n, k } = dims;
    if m == 0 || n == 0 || k == 0 {
        return false;
    }
    let useful = m * n * k;
    let padded = m.div_ceil(MR) * MR * n.div_ceil(NR) * NR * k;
    useful >= 192 && padded <= 2 * useful
}

// ---------------------------------------------------------------------------
// Pack arenas.
// ---------------------------------------------------------------------------

/// Reusable pack/staging buffers of the batched path: split-complex `A`
/// panels, a per-item `B` pack, and a shared-operand `B` pack. The first
/// batched call through an arena sizes the buffers; every later call with
/// shapes no larger is allocation-free.
///
/// The default entry points ([`sbsmm`], [`sbsmm_pb`], …) use a
/// thread-local arena; holders of a [`crate::workspace::Workspace`] can
/// route through its arena instead
/// ([`crate::workspace::Workspace::batch_arena`] + [`sbsmm_with`]).
#[derive(Default)]
pub struct BatchArena {
    pub(crate) a_re: Vec<f64>,
    pub(crate) a_im: Vec<f64>,
    pub(crate) item_b: PackedB,
    pub(crate) shared_b: PackedB,
}

impl BatchArena {
    /// An empty arena. Performs no allocation; buffers materialize on
    /// first use.
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// Drops every buffer, returning the arena to its freshly constructed
    /// state.
    pub fn reset(&mut self) {
        *self = BatchArena::default();
    }

    /// Approximate bytes held by the arena's pack buffers.
    pub fn pooled_bytes(&self) -> usize {
        8 * (self.a_re.capacity()
            + self.a_im.capacity()
            + self.item_b.re.capacity()
            + self.item_b.im.capacity()
            + self.shared_b.re.capacity()
            + self.shared_b.im.capacity())
    }

    /// Resizes the `A`-panel staging for an `m × k` item.
    fn ensure_a(&mut self, m: usize, k: usize) {
        let len = m.div_ceil(MR) * MR * k;
        self.a_re.resize(len, 0.0);
        self.a_im.resize(len, 0.0);
    }
}

thread_local! {
    /// Per-thread arena of the convenience entry points. Rayon workers
    /// each warm their own; steady-state batched calls are allocation-free.
    static BATCH_ARENA: RefCell<BatchArena> = RefCell::new(BatchArena::default());

    /// Per-thread free list of [`PackedB`] packs for callers that hoist
    /// shared-operand packing across calls inside parallel regions (where
    /// no [`crate::workspace::Workspace`] is at hand).
    static PACKED_B_POOL: RefCell<Vec<PackedB>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's [`BatchArena`].
pub fn with_batch_arena<R>(f: impl FnOnce(&mut BatchArena) -> R) -> R {
    BATCH_ARENA.with(|cell| f(&mut cell.borrow_mut()))
}

/// Checks a warm [`PackedB`] out of this thread's pool (allocation-free
/// once the pool has been populated by [`give_tls_packed_b`]).
pub fn take_tls_packed_b() -> PackedB {
    PACKED_B_POOL.with(|cell| cell.borrow_mut().pop().unwrap_or_default())
}

/// Returns a [`PackedB`] to this thread's pool for reuse.
pub fn give_tls_packed_b(pb: PackedB) {
    PACKED_B_POOL.with(|cell| cell.borrow_mut().push(pb));
}

// ---------------------------------------------------------------------------
// Batched entry points.
// ---------------------------------------------------------------------------

/// The specialized strided-batched small-matrix multiply:
/// `C[b] = alpha · A[b] · B[b] + beta · C[b]` for `b < batch`.
///
/// Runs the packed split-complex micro-kernel when the item shape
/// amortizes packing ([`use_packed_kernel`]); stride-0 operands are packed
/// once for the whole batch. Tiny items fall back to the scalar loop.
/// Pack buffers come from this thread's [`BatchArena`].
pub fn sbsmm(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    with_batch_arena(|arena| sbsmm_with(arena, dims, batch, alpha, a, b, beta, c, strides));
}

/// [`sbsmm`] drawing pack buffers from a caller-supplied arena (e.g.
/// [`crate::workspace::Workspace::batch_arena`]) instead of the
/// thread-local one.
pub fn sbsmm_with(
    arena: &mut BatchArena,
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    if batch == 0 {
        return;
    }
    if alpha != C64::ZERO {
        count_sbsmm(dims, batch);
    }
    if alpha == C64::ZERO || !use_packed_kernel(dims) {
        sbsmm_scalar_unchecked(dims, batch, alpha, a, b, beta, c, strides);
        return;
    }
    sbsmm_packed(arena, dims, batch, alpha, a, b, beta, c, strides);
}

/// Records one batched-multiply invocation and its `8·m·n·k·batch`
/// complex FLOPs against the trace registry (no-op while disarmed).
fn count_sbsmm(dims: BatchDims, batch: usize) {
    omen_trace::add2(
        omen_trace::Counter::SbsmmCalls,
        1,
        omen_trace::Counter::SbsmmFlops,
        8 * (dims.m as u64) * (dims.n as u64) * (dims.k as u64) * (batch as u64),
    );
}

/// The packed batch engine (bounds already checked, shape known
/// worthwhile): packs stride-0 operands once, per-item operands per item,
/// and sweeps the micro-kernel.
fn sbsmm_packed(
    arena: &mut BatchArena,
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    let BatchDims { m, n, k } = dims;
    let fma = fma_available();
    arena.ensure_a(m, k);
    let BatchArena {
        a_re,
        a_im,
        item_b,
        shared_b,
    } = arena;
    if strides.b == 0 {
        shared_b.pack(k, n, &b[..k * n]);
    }
    for idx in 0..batch {
        let cv = &mut c[idx * strides.c..idx * strides.c + m * n];
        scale_c(beta, cv);
        if strides.a != 0 || idx == 0 {
            let av = &a[idx * strides.a..idx * strides.a + m * k];
            pack_a_panels(av, m, k, a_re, a_im);
        }
        let pb: &PackedB = if strides.b == 0 {
            shared_b
        } else {
            let bv = &b[idx * strides.b..idx * strides.b + k * n];
            item_b.pack(k, n, bv);
            item_b
        };
        sweep_tiles(fma, m, n, k, alpha, a_re, a_im, &pb.re, &pb.im, cv);
    }
}

/// Rayon-parallel version of [`sbsmm`]; batch items are independent so they
/// partition perfectly across worker threads (the GPU analogy: one thread
/// block per batch item). Shared (stride-0) operands are packed once on
/// the calling thread; each worker packs per-item operands into its own
/// thread-local arena.
///
/// # Errors
/// Returns [`StrideOverlap`] when `strides.c < m * n`, i.e. when parallel
/// output items would alias.
pub fn sbsmm_par(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) -> Result<(), StrideOverlap> {
    let item_len = dims.m * dims.n;
    if batch > 1 && strides.c < item_len {
        return Err(StrideOverlap {
            stride_c: strides.c,
            item_len,
        });
    }
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    if batch == 0 || item_len == 0 {
        return Ok(());
    }
    let BatchDims { m, n, k } = dims;
    if alpha != C64::ZERO {
        count_sbsmm(dims, batch);
    }
    // For batch == 1 the stride is unused; clamp the chunk size so a
    // stride-0 descriptor still yields a full output item.
    let chunk = strides.c.max(item_len);
    if alpha == C64::ZERO || !use_packed_kernel(dims) {
        c.par_chunks_mut(chunk)
            .take(batch)
            .enumerate()
            .for_each(|(idx, cv)| {
                let av = &a[idx * strides.a..idx * strides.a + m * k];
                let bv = &b[idx * strides.b..idx * strides.b + k * n];
                small_gemm(dims, alpha, av, bv, beta, &mut cv[..item_len]);
            });
        return Ok(());
    }
    let fma = fma_available();
    // Pre-pack shared operands on the calling thread, in buffers taken
    // *out* of the TLS pool so the calling thread can still act as a rayon
    // worker (workers borrow their own arena per item).
    let mut shared_a = take_tls_packed_b(); // reuse the pack storage as raw planes
    let mut shared_b = take_tls_packed_b();
    if strides.a == 0 {
        let len = m.div_ceil(MR) * MR * k;
        shared_a.re.resize(len, 0.0);
        shared_a.im.resize(len, 0.0);
        pack_a_panels(&a[..m * k], m, k, &mut shared_a.re, &mut shared_a.im);
    }
    if strides.b == 0 {
        shared_b.pack(k, n, &b[..k * n]);
    }
    {
        let (shared_a, shared_b) = (&shared_a, &shared_b);
        c.par_chunks_mut(chunk)
            .take(batch)
            .enumerate()
            .for_each(|(idx, cv)| {
                with_batch_arena(|arena| {
                    arena.ensure_a(m, k);
                    let BatchArena {
                        a_re,
                        a_im,
                        item_b,
                        shared_b: _,
                    } = arena;
                    let cv = &mut cv[..item_len];
                    scale_c(beta, cv);
                    let (pa_re, pa_im): (&[f64], &[f64]) = if strides.a == 0 {
                        (&shared_a.re, &shared_a.im)
                    } else {
                        let av = &a[idx * strides.a..idx * strides.a + m * k];
                        pack_a_panels(av, m, k, a_re, a_im);
                        (a_re, a_im)
                    };
                    let pb: &PackedB = if strides.b == 0 {
                        shared_b
                    } else {
                        let bv = &b[idx * strides.b..idx * strides.b + k * n];
                        item_b.pack(k, n, bv);
                        item_b
                    };
                    sweep_tiles(fma, m, n, k, alpha, pa_re, pa_im, &pb.re, &pb.im, cv);
                });
            });
    }
    give_tls_packed_b(shared_a);
    give_tls_packed_b(shared_b);
    Ok(())
}

/// Strided-batched multiply against a pre-packed `B`:
/// `C[i] = alpha · A[i] · B + beta · C[i]`. The caller amortizes
/// [`PackedB::pack`] across as many calls as it likes (the transformed SSE
/// stage C packs each `∇H·D` block once and sweeps it over the whole `kz`
/// loop and all four Σ^≷ updates). A-stride `0` packs `A` once too.
/// Always runs the packed micro-kernel (callers opt in per shape with
/// [`use_packed_kernel`]).
pub fn sbsmm_pb(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    stride_a: usize,
    pb: &PackedB,
    beta: C64,
    c: &mut [C64],
    stride_c: usize,
) {
    let BatchDims { m, n, k } = dims;
    assert_eq!((pb.k, pb.n), (k, n), "sbsmm_pb: PackedB shape mismatch");
    if batch == 0 {
        return;
    }
    assert!(
        (batch - 1) * stride_a + m * k <= a.len(),
        "A slice too short for batch"
    );
    assert!(
        (batch - 1) * stride_c + m * n <= c.len(),
        "C slice too short for batch"
    );
    if alpha == C64::ZERO {
        for idx in 0..batch {
            scale_c(beta, &mut c[idx * stride_c..idx * stride_c + m * n]);
        }
        return;
    }
    count_sbsmm(dims, batch);
    let fma = fma_available();
    with_batch_arena(|arena| {
        arena.ensure_a(m, k);
        let BatchArena { a_re, a_im, .. } = arena;
        for idx in 0..batch {
            let cv = &mut c[idx * stride_c..idx * stride_c + m * n];
            scale_c(beta, cv);
            if stride_a != 0 || idx == 0 {
                let av = &a[idx * stride_a..idx * stride_a + m * k];
                pack_a_panels(av, m, k, a_re, a_im);
            }
            sweep_tiles(fma, m, n, k, alpha, a_re, a_im, &pb.re, &pb.im, cv);
        }
    });
}

/// Single-item convenience over [`sbsmm_pb`]: one small GEMM against a
/// pre-packed `B` (the per-point SSE kernels pack each `G` block once and
/// reuse it across the three gradient directions).
pub fn small_gemm_pb(
    dims: BatchDims,
    alpha: C64,
    a: &[C64],
    pb: &PackedB,
    beta: C64,
    c: &mut [C64],
) {
    sbsmm_pb(
        dims,
        1,
        alpha,
        a,
        dims.m * dims.k,
        pb,
        beta,
        c,
        dims.m * dims.n,
    );
}

/// The retained scalar batched loop (the seed's formulation): the
/// correctness oracle the property tests pin the packed path against, and
/// the baseline `table9_sbsmm` measures speedups from.
pub fn sbsmm_scalar(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    sbsmm_scalar_unchecked(dims, batch, alpha, a, b, beta, c, strides);
}

fn sbsmm_scalar_unchecked(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
) {
    for idx in 0..batch {
        let av = &a[idx * strides.a..idx * strides.a + dims.m * dims.k];
        let bv = &b[idx * strides.b..idx * strides.b + dims.k * dims.n];
        let cv = &mut c[idx * strides.c..idx * strides.c + dims.m * dims.n];
        small_gemm(dims, alpha, av, bv, beta, cv);
    }
}

/// One small column-major GEMM on raw slices (no `CMatrix` wrapper, no
/// allocation): the scalar interleaved-complex reference kernel. Kept
/// `#[inline]` so the batch loop fuses.
#[inline]
pub fn small_gemm(dims: BatchDims, alpha: C64, a: &[C64], b: &[C64], beta: C64, c: &mut [C64]) {
    let BatchDims { m, n, k } = dims;
    if beta == C64::ZERO {
        c.fill(C64::ZERO);
    } else if beta != C64::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    for j in 0..n {
        let cj = &mut c[j * m..(j + 1) * m];
        for l in 0..k {
            let w = alpha * b[j * k + l];
            if w == C64::ZERO {
                continue;
            }
            let al = &a[l * m..(l + 1) * m];
            for (ci, &ail) in cj.iter_mut().zip(al.iter()) {
                *ci = ci.mul_add(ail, w);
            }
        }
    }
}

/// Vendor-library stand-in: pads every operand to `pad × pad` (cuBLAS'
/// internal tile size for the small-problem path) and runs the full padded
/// multiplication. Numerically identical to [`sbsmm`] but performs
/// `(pad/m)·(pad/n)·(pad/k)` times more work — reproducing the
/// useful-vs-peak gap in Table 9.
pub fn sbsmm_padded(
    dims: BatchDims,
    batch: usize,
    alpha: C64,
    a: &[C64],
    b: &[C64],
    beta: C64,
    c: &mut [C64],
    strides: Strides,
    pad: usize,
) {
    assert!(
        pad >= dims.m && pad >= dims.n && pad >= dims.k,
        "pad too small"
    );
    check_bounds(dims, batch, a.len(), b.len(), c.len(), strides);
    let mut pa = CMatrix::zeros(pad, pad);
    let mut pb = CMatrix::zeros(pad, pad);
    let mut pc = CMatrix::zeros(pad, pad);
    for idx in 0..batch {
        pa.fill_zero();
        pb.fill_zero();
        pc.fill_zero();
        let av = &a[idx * strides.a..];
        let bv = &b[idx * strides.b..];
        for j in 0..dims.k {
            for i in 0..dims.m {
                pa[(i, j)] = av[j * dims.m + i];
            }
        }
        for j in 0..dims.n {
            for i in 0..dims.k {
                pb[(i, j)] = bv[j * dims.k + i];
            }
        }
        gemm(C64::ONE, &pa, Op::N, &pb, Op::N, C64::ZERO, &mut pc);
        // C = beta*C + alpha*P, matching sbsmm's semantics exactly.
        let cv = &mut c[idx * strides.c..idx * strides.c + dims.m * dims.n];
        for j in 0..dims.n {
            for i in 0..dims.m {
                let out = &mut cv[j * dims.m + i];
                *out = *out * beta + alpha * pc[(i, j)];
            }
        }
    }
}

/// Total *performed* flops of the padded strategy.
pub fn padded_flops(pad: usize, batch: usize) -> u64 {
    8 * (pad as u64).pow(3) * batch as u64
}

fn check_bounds(
    dims: BatchDims,
    batch: usize,
    alen: usize,
    blen: usize,
    clen: usize,
    strides: Strides,
) {
    if batch == 0 {
        return;
    }
    let last = batch - 1;
    assert!(
        last * strides.a + dims.m * dims.k <= alen,
        "A slice too short for batch"
    );
    assert!(
        last * strides.b + dims.k * dims.n <= blen,
        "B slice too short for batch"
    );
    assert!(
        last * strides.c + dims.m * dims.n <= clen,
        "C slice too short for batch"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn fill(n: usize, seed: u64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + seed as f64 * 0.37).sin();
                let y = (i as f64 * 1.7 - seed as f64).cos();
                c64(x, y)
            })
            .collect()
    }

    fn reference(dims: BatchDims, batch: usize, a: &[C64], b: &[C64], s: Strides) -> Vec<C64> {
        let mut out = vec![C64::ZERO; batch * s.c];
        for idx in 0..batch {
            let am = CMatrix::from_vec(
                dims.m,
                dims.k,
                a[idx * s.a..idx * s.a + dims.m * dims.k].to_vec(),
            );
            let bm = CMatrix::from_vec(
                dims.k,
                dims.n,
                b[idx * s.b..idx * s.b + dims.k * dims.n].to_vec(),
            );
            let cm = matmul(&am, &bm);
            out[idx * s.c..idx * s.c + dims.m * dims.n].copy_from_slice(cm.as_slice());
        }
        out
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn sbsmm_matches_reference() {
        let dims = BatchDims {
            m: 12,
            n: 12,
            k: 12,
        };
        let s = Strides::packed(dims);
        let batch = 17;
        let a = fill(batch * s.a, 1);
        let b = fill(batch * s.b, 2);
        let mut c = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        let want = reference(dims, batch, &a, &b, s);
        assert!(max_err(&c, &want) < 1e-12);
    }

    #[test]
    fn packed_matches_scalar_shared_b() {
        // The transformed-kernel stage-C shape: A strided, B shared
        // (stride 0), accumulating into C (beta = 1).
        let dims = BatchDims::square(12);
        let batch = 9;
        let s = Strides {
            a: dims.m * dims.k,
            b: 0,
            c: dims.m * dims.n,
        };
        let a = fill(batch * s.a, 5);
        let b = fill(dims.k * dims.n, 6);
        let c0 = fill(batch * s.c, 7);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ONE, &mut c1, s);
        sbsmm_scalar(dims, batch, C64::ONE, &a, &b, C64::ONE, &mut c2, s);
        assert!(max_err(&c1, &c2) < 1e-12);
    }

    #[test]
    fn packed_matches_scalar_shared_a() {
        // The stage-A shape: A shared (stride 0), B strided.
        let dims = BatchDims { m: 12, n: 8, k: 12 };
        let batch = 7;
        let s = Strides {
            a: 0,
            b: dims.k * dims.n,
            c: dims.m * dims.n,
        };
        let a = fill(dims.m * dims.k, 8);
        let b = fill(batch * s.b, 9);
        let mut c1 = vec![C64::ZERO; batch * s.c];
        let mut c2 = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c1, s);
        sbsmm_scalar(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c2, s);
        assert!(max_err(&c1, &c2) < 1e-12);
    }

    #[test]
    fn sbsmm_pb_matches_scalar() {
        let dims = BatchDims::square(12);
        let batch = 5;
        let s = Strides {
            a: dims.m * dims.k,
            b: 0,
            c: dims.m * dims.n,
        };
        let a = fill(batch * s.a, 11);
        let b = fill(dims.k * dims.n, 12);
        let c0 = fill(batch * s.c, 13);
        let mut pb = PackedB::empty();
        pb.pack(dims.k, dims.n, &b);
        assert_eq!(pb.shape(), (12, 12));
        let mut c1 = c0.clone();
        sbsmm_pb(dims, batch, C64::ONE, &a, s.a, &pb, C64::ONE, &mut c1, s.c);
        let mut c2 = c0.clone();
        sbsmm_scalar(dims, batch, C64::ONE, &a, &b, C64::ONE, &mut c2, s);
        assert!(max_err(&c1, &c2) < 1e-12);
        // Single-item wrapper agrees too.
        let mut c3 = c0[..s.c].to_vec();
        small_gemm_pb(dims, C64::ONE, &a[..s.a], &pb, C64::ONE, &mut c3);
        assert!(max_err(&c3, &c1[..s.c]) < 1e-12);
    }

    #[test]
    fn sbsmm_par_matches_serial() {
        let dims = BatchDims { m: 8, n: 5, k: 9 };
        let s = Strides::packed(dims);
        let batch = 33;
        let a = fill(batch * s.a, 3);
        let b = fill(batch * s.b, 4);
        let mut c1 = vec![C64::ZERO; batch * s.c];
        let mut c2 = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c1, s);
        sbsmm_par(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c2, s).unwrap();
        assert!(max_err(&c1, &c2) == 0.0, "parallel must be bit-identical");
    }

    #[test]
    fn sbsmm_par_overlap_is_typed_error() {
        let dims = BatchDims::square(4);
        let s = Strides {
            a: 16,
            b: 16,
            c: 8, // < m*n: items alias
        };
        let a = fill(64, 1);
        let b = fill(64, 2);
        let mut c = vec![C64::ZERO; 64];
        let err = sbsmm_par(dims, 4, C64::ONE, &a, &b, C64::ZERO, &mut c, s).unwrap_err();
        assert_eq!(
            err,
            StrideOverlap {
                stride_c: 8,
                item_len: 16
            }
        );
        assert!(err.to_string().contains("non-overlapping"));
    }

    #[test]
    fn padded_matches_specialized() {
        let dims = BatchDims {
            m: 12,
            n: 12,
            k: 12,
        };
        let s = Strides::packed(dims);
        let batch = 5;
        let a = fill(batch * s.a, 7);
        let b = fill(batch * s.b, 8);
        let mut c1 = vec![C64::ZERO; batch * s.c];
        let mut c2 = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c1, s);
        sbsmm_padded(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c2, s, 16);
        assert!(max_err(&c1, &c2) < 1e-12);
    }

    #[test]
    fn accumulation_beta_one() {
        let dims = BatchDims::square(6);
        let s = Strides::packed(dims);
        let batch = 3;
        let a = fill(batch * s.a, 10);
        let b = fill(batch * s.b, 11);
        let c0 = fill(batch * s.c, 12);
        let mut c = c0.clone();
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ONE, &mut c, s);
        let prod = reference(dims, batch, &a, &b, s);
        for i in 0..c.len() {
            assert!((c[i] - (c0[i] + prod[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_beta_away_from_unit() {
        let dims = BatchDims { m: 12, n: 9, k: 14 };
        let s = Strides::packed(dims);
        let batch = 4;
        let alpha = c64(0.7, -1.3);
        let beta = c64(-0.4, 2.1);
        let a = fill(batch * s.a, 21);
        let b = fill(batch * s.b, 22);
        let c0 = fill(batch * s.c, 23);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        sbsmm(dims, batch, alpha, &a, &b, beta, &mut c1, s);
        sbsmm_scalar(dims, batch, alpha, &a, &b, beta, &mut c2, s);
        assert!(max_err(&c1, &c2) < 1e-11);
    }

    #[test]
    fn interleaved_strides() {
        // Items spaced twice as far apart as their size: gaps are untouched.
        let dims = BatchDims::square(4);
        let base = Strides::packed(dims);
        let s = Strides {
            a: base.a * 2,
            b: base.b * 2,
            c: base.c * 2,
        };
        let batch = 4;
        let a = fill(batch * s.a, 20);
        let b = fill(batch * s.b, 21);
        let mut c = vec![c64(9.0, 9.0); batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        // Gap elements untouched:
        assert_eq!(c[base.c], c64(9.0, 9.0));
        // First item correct:
        let want = reference(dims, 1, &a[..base.a], &b[..base.b], base);
        assert!(max_err(&c[..base.c], &want[..base.c]) < 1e-12);
    }

    #[test]
    fn packed_dispatch_heuristic() {
        // 12×12×12 routes through the packed kernel; slivers and tiny
        // items stay scalar.
        assert!(use_packed_kernel(BatchDims::square(12)));
        assert!(use_packed_kernel(BatchDims::square(8)));
        assert!(!use_packed_kernel(BatchDims::square(4)));
        assert!(!use_packed_kernel(BatchDims { m: 12, n: 1, k: 12 }));
        assert!(!use_packed_kernel(BatchDims { m: 0, n: 4, k: 4 }));
    }

    #[test]
    fn flop_accounting() {
        let dims = BatchDims::square(12);
        assert_eq!(dims.flops(), 8 * 1728);
        assert_eq!(padded_flops(16, 10), 8 * 4096 * 10);
        // Useful fraction for 12^3 padded to 16^3 is (12/16)^3 ≈ 42%:
        let useful = dims.flops() as f64 * 10.0 / padded_flops(16, 10) as f64;
        assert!((useful - 0.421875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "A slice too short")]
    fn bounds_checked() {
        let dims = BatchDims::square(4);
        let s = Strides::packed(dims);
        let a = vec![C64::ZERO; 10];
        let b = vec![C64::ZERO; 64];
        let mut c = vec![C64::ZERO; 64];
        sbsmm(dims, 4, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
    }
}
