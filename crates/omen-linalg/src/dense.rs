//! Dense complex matrices in column-major layout.
//!
//! Column-major matches the BLAS convention the paper's kernels (cuBLAS,
//! MKL, ESSL) use, so leading-dimension/stride reasoning in the batched
//! kernels carries over directly.

use crate::complex::{c64, C64};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense `rows × cols` complex matrix, column-major.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Creates a matrix that owns `data` (column-major, `rows*cols` long).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        CMatrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw column-major data slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw column-major data slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Borrows column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[C64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrows column `j`.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [C64] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Unchecked-ish linear index of `(i, j)`.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        j * self.rows + i
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(C64::ZERO);
    }

    /// Element capacity of the backing buffer (what [`CMatrix::resize`]
    /// can reach without reallocating).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes to `rows × cols`, reusing the backing buffer. Contents are
    /// zeroed. Allocates only when the buffer must grow beyond its
    /// capacity — the workspace reuse path never does after warmup.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, C64::ZERO);
    }

    /// Reshapes like [`CMatrix::resize`] but without zeroing surviving
    /// contents — for outputs that are fully overwritten immediately
    /// (e.g. `gemm` with `beta == 0`, which zero-fills itself).
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, C64::ZERO);
    }

    /// Becomes an elementwise copy of `src`, reusing the backing buffer.
    pub fn copy_from(&mut self, src: &CMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Overwrites with the identity (must already be square).
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity on non-square matrix");
        self.data.fill(C64::ZERO);
        for i in 0..self.rows {
            let k = i * self.rows + i;
            self.data[k] = C64::ONE;
        }
    }

    /// Writes the conjugate transpose of `self` into `out` (buffer reused).
    pub fn adjoint_into(&self, out: &mut CMatrix) {
        out.resize(self.cols, self.rows);
        for j in 0..self.cols {
            let src = self.col(j);
            for (i, &v) in src.iter().enumerate() {
                out.data[i * self.cols + j] = v.conj();
            }
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CMatrix {
        let mut out = self.clone();
        for v in out.data.iter_mut() {
            *v = v.conj();
        }
        out
    }

    /// Scales all elements by a complex factor, in place.
    pub fn scale_inplace(&mut self, s: C64) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scaled(&self, s: C64) -> CMatrix {
        let mut out = self.clone();
        out.scale_inplace(s);
        out
    }

    /// `self += alpha * other` (AXPY over all elements).
    pub fn axpy(&mut self, alpha: C64, other: &CMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = a.mul_add(alpha, *b);
        }
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Largest element magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal elements); requires a square matrix.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` if `‖self − other‖_max <= tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (*a - *b).abs() <= tol)
    }

    /// `true` if the matrix is Hermitian to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..=j {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the matrix is anti-Hermitian (`A† = −A`) to within `tol`.
    /// Lesser/greater Green's functions satisfy this identity.
    pub fn is_anti_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..=j {
                if (self[(i, j)] + self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the `br × bc` sub-matrix whose top-left corner is `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, br: usize, bc: usize) -> CMatrix {
        assert!(
            r0 + br <= self.rows && c0 + bc <= self.cols,
            "block out of range"
        );
        CMatrix::from_fn(br, bc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `src` into the sub-matrix at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &CMatrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "set_block out of range"
        );
        for j in 0..src.cols {
            for i in 0..src.rows {
                let v = src[(i, j)];
                self[(r0 + i, c0 + j)] = v;
            }
        }
    }

    /// Adds `alpha * src` into the sub-matrix at `(r0, c0)`.
    pub fn add_block(&mut self, r0: usize, c0: usize, alpha: C64, src: &CMatrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "add_block out of range"
        );
        for j in 0..src.cols {
            for i in 0..src.rows {
                let v = src[(i, j)];
                let dst = &mut self[(r0 + i, c0 + j)];
                *dst = dst.mul_add(alpha, v);
            }
        }
    }

    /// Symmetrizes the matrix Hermitianly in place: `A ← (A + A†)/2`.
    pub fn hermitianize(&mut self) {
        assert!(self.is_square());
        for j in 0..self.cols {
            for i in 0..=j {
                let avg = (self[(i, j)] + self[(j, i)].conj()).scale(0.5);
                self[(i, j)] = avg;
                self[(j, i)] = avg.conj();
            }
        }
    }

    /// Anti-Hermitian projection in place: `A ← (A − A†)/2`.
    pub fn anti_hermitianize(&mut self) {
        assert!(self.is_square());
        for j in 0..self.cols {
            for i in 0..=j {
                let avg = (self[(i, j)] - self[(j, i)].conj()).scale(0.5);
                self[(i, j)] = avg;
                self[(j, i)] = -avg.conj();
            }
        }
    }

    /// Matrix-vector product `y = A x`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![C64::ZERO; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let col = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(col.iter()) {
                *yi = yi.mul_add(aij, xj);
            }
        }
        y
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[self.idx(i, j)]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        let k = self.idx(i, j);
        &mut self.data[k]
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut out = self.clone();
        out += other;
        out
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        out -= other;
        out
    }
}

impl AddAssign<&CMatrix> for CMatrix {
    fn add_assign(&mut self, other: &CMatrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }
}

impl SubAssign<&CMatrix> for CMatrix {
    fn sub_assign(&mut self, other: &CMatrix) {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scaled(c64(-1.0, 0.0))
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    /// Convenience `A * B` (allocating). Hot paths should call
    /// [`crate::gemm::gemm`] directly to control accumulation and transposes.
    fn mul(self, other: &CMatrix) -> CMatrix {
        crate::gemm::matmul(self, other)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > cmax { "…" } else { "" })?;
        }
        if self.rows > rmax {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = CMatrix::from_fn(3, 2, |i, j| c64(i as f64, j as f64));
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], c64(2.0, 1.0));
        // Column-major: col(1) contiguous.
        assert_eq!(m.col(1), &[c64(0.0, 1.0), c64(1.0, 1.0), c64(2.0, 1.0)]);
    }

    #[test]
    fn identity_and_trace() {
        let id = CMatrix::identity(4);
        assert_eq!(id.trace(), c64(4.0, 0.0));
        assert!(id.is_hermitian(0.0));
    }

    #[test]
    fn adjoint_involution() {
        let m = CMatrix::from_fn(3, 4, |i, j| c64(i as f64 + 0.5, j as f64 - 1.0));
        assert!(m.adjoint().adjoint().approx_eq(&m, 0.0));
        assert_eq!(m.adjoint().shape(), (4, 3));
        assert_eq!(m.adjoint()[(1, 2)], m[(2, 1)].conj());
    }

    #[test]
    fn hermitian_checks() {
        let mut m = CMatrix::from_fn(3, 3, |i, j| c64((i * j) as f64, i as f64 - j as f64));
        m.hermitianize();
        assert!(m.is_hermitian(1e-15));
        let mut a = m.clone();
        a.anti_hermitianize();
        assert!(a.is_anti_hermitian(1e-15));
    }

    #[test]
    fn block_round_trip() {
        let m = CMatrix::from_fn(6, 6, |i, j| c64((10 * i + j) as f64, 0.0));
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b[(0, 0)], c64(23.0, 0.0));
        let mut z = CMatrix::zeros(6, 6);
        z.set_block(2, 3, &b);
        assert_eq!(z[(3, 4)], m[(3, 4)]);
        assert_eq!(z[(0, 0)], C64::ZERO);
    }

    #[test]
    fn arithmetic_ops() {
        let a = CMatrix::from_fn(2, 2, |i, j| c64((i + j) as f64, 1.0));
        let b = CMatrix::identity(2);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], a[(0, 0)] + C64::ONE);
        let d = &s - &b;
        assert!(d.approx_eq(&a, 0.0));
        let n = -&a;
        assert_eq!(n[(1, 1)], -a[(1, 1)]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = CMatrix::from_fn(3, 3, |i, j| c64(i as f64, j as f64));
        let b = CMatrix::identity(3);
        let expect = CMatrix::from_fn(3, 3, |i, j| {
            a[(i, j)] + c64(0.0, 2.0) * if i == j { C64::ONE } else { C64::ZERO }
        });
        a.axpy(c64(0.0, 2.0), &b);
        assert!(a.approx_eq(&expect, 1e-15));
    }

    #[test]
    fn matvec_identity() {
        let id = CMatrix::identity(3);
        let x = vec![c64(1.0, -1.0), c64(2.0, 0.0), c64(0.0, 3.0)];
        assert_eq!(id.matvec(&x), x);
    }

    #[test]
    fn norms() {
        let m = CMatrix::from_diag(&[c64(3.0, 4.0), c64(0.0, 0.0)]);
        assert_eq!(m.max_abs(), 5.0);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(3, 2);
        let _ = &a + &b;
    }
}
