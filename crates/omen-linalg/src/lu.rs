//! Complex LU factorization with partial pivoting, linear solves, and
//! matrix inversion.
//!
//! The RGF recursion inverts one diagonal block per step (`g = M⁻¹`); OMEN
//! uses `Zgetrf/Zgetrs` from cuBLAS/MAGMA. Block sizes here are moderate
//! (tens to a few hundreds), so a cache-friendly right-looking factorization
//! is adequate.

use crate::complex::C64;
use crate::dense::CMatrix;

/// An LU factorization `P A = L U` of a square complex matrix.
pub struct Lu {
    f: LuFactors,
}

/// Reusable LU storage: the packed factors and pivot vector live across
/// factorizations, so the RGF recursion (one diagonal-block inversion per
/// slab per point) allocates nothing after the first solve.
pub struct LuFactors {
    /// Packed factors: unit-lower `L` below the diagonal, `U` on and above.
    lu: CMatrix,
    /// Row permutation: `perm[k]` is the pivot row chosen at step `k`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

impl Default for LuFactors {
    fn default() -> Self {
        Self::new()
    }
}

impl LuFactors {
    /// Empty storage; holds no factorization until [`LuFactors::factorize`].
    pub fn new() -> Self {
        LuFactors {
            lu: CMatrix::zeros(0, 0),
            perm: Vec::new(),
            perm_sign: 1.0,
        }
    }

    /// Factorizes `a` into this storage (buffers reused). Returns an error
    /// if a zero pivot column is found; the stored factors are then
    /// unspecified.
    pub fn factorize(&mut self, a: &CMatrix) -> Result<(), SingularMatrix> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        self.lu.copy_from(a);
        self.perm.clear();
        self.perm_sign = 1.0;
        let lu = &mut self.lu;

        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].norm_sqr();
            for i in (k + 1)..n {
                let v = lu[(i, k)].norm_sqr();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(SingularMatrix { step: k });
            }
            self.perm.push(p);
            if p != k {
                self.perm_sign = -self.perm_sign;
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
            }

            // Eliminate below the pivot; update the trailing submatrix
            // column by column (contiguous in column-major storage).
            let pivot_inv = lu[(k, k)].recip();
            for i in (k + 1)..n {
                let m = lu[(i, k)] * pivot_inv;
                lu[(i, k)] = m;
            }
            for j in (k + 1)..n {
                let ukj = lu[(k, j)];
                if ukj == C64::ZERO {
                    continue;
                }
                for i in (k + 1)..n {
                    let lik = lu[(i, k)];
                    let v = lu[(i, j)];
                    lu[(i, j)] = v - lik * ukj;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side, in place.
    // Triangular-solve index loops mirror the textbook formulation.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_vec_inplace(&self, b: &mut [C64]) {
        let n = self.n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation.
        for (k, &p) in self.perm.iter().enumerate() {
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward: L y = P b (unit diagonal).
        for i in 1..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc * self.lu[(i, i)].recip();
        }
    }

    /// Solves `A X = B` for a multi-column right-hand side, in place.
    pub fn solve_inplace(&self, b: &mut CMatrix) {
        assert_eq!(b.rows(), self.n(), "rhs row count mismatch");
        for j in 0..b.cols() {
            self.solve_vec_inplace(b.col_mut(j));
        }
    }

    /// Writes `A⁻¹` into `out` (buffer reused; resized to `n × n`).
    pub fn invert_into(&self, out: &mut CMatrix) {
        out.resize_for_overwrite(self.n(), self.n());
        out.set_identity();
        self.solve_inplace(out);
    }

    /// Determinant (product of `U` diagonal times the permutation sign).
    pub fn det(&self) -> C64 {
        let mut d = C64::from_re(self.perm_sign);
        for i in 0..self.n() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Error returned when a matrix is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// The elimination step at which no usable pivot was found.
    pub step: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at elimination step {}", self.step)
    }
}

impl std::error::Error for SingularMatrix {}

impl Lu {
    /// Factorizes `a`. Returns an error if a zero pivot column is found.
    pub fn new(a: &CMatrix) -> Result<Lu, SingularMatrix> {
        let mut f = LuFactors::new();
        f.factorize(a)?;
        Ok(Lu { f })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.f.n()
    }

    /// Solves `A x = b` for a single right-hand side, in place.
    pub fn solve_vec_inplace(&self, b: &mut [C64]) {
        self.f.solve_vec_inplace(b);
    }

    /// Solves `A X = B` for a multi-column right-hand side, in place.
    pub fn solve_inplace(&self, b: &mut CMatrix) {
        self.f.solve_inplace(b);
    }

    /// Returns `A⁻¹ B`.
    pub fn solve(&self, b: &CMatrix) -> CMatrix {
        let mut x = b.clone();
        self.solve_inplace(&mut x);
        x
    }

    /// Returns `A⁻¹`.
    pub fn inverse(&self) -> CMatrix {
        let mut inv = CMatrix::zeros(0, 0);
        self.f.invert_into(&mut inv);
        inv
    }

    /// Determinant (product of `U` diagonal times the permutation sign).
    pub fn det(&self) -> C64 {
        self.f.det()
    }
}

/// Convenience: inverts a square matrix, panicking on singularity with a
/// descriptive message. RGF diagonal blocks of a well-posed NEGF system are
/// always invertible (the `i·η` broadening guarantees it), so a panic here
/// indicates malformed input.
pub fn invert(a: &CMatrix) -> CMatrix {
    Lu::new(a)
        .unwrap_or_else(|e| panic!("invert: {e} (matrix {}x{})", a.rows(), a.cols()))
        .inverse()
}

/// Convenience: solves `A X = B`, panicking on singularity.
pub fn solve(a: &CMatrix, b: &CMatrix) -> CMatrix {
    Lu::new(a)
        .unwrap_or_else(|e| panic!("solve: {e} (matrix {}x{})", a.rows(), a.cols()))
        .solve(b)
}

/// Flop count of an `n × n` complex LU factorization plus `m`-column solve,
/// using the paper's 8-flops-per-complex-MAC convention:
/// `8·(2n³/3)/2 = 8n³/3 …` we report the standard `8(n³/3)` for `getrf` and
/// `8 n² m` for `getrs`.
pub fn lu_flops(n: usize, solve_cols: usize) -> u64 {
    let n = n as u64;
    let m = solve_cols as u64;
    8 * n * n * n / 3 + 8 * n * n * m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::matmul;

    fn test_mat(n: usize, seed: f64) -> CMatrix {
        // Diagonally dominated so it is comfortably nonsingular.
        CMatrix::from_fn(n, n, |i, j| {
            let base = c64(
                ((i * 7 + j * 3) as f64 + seed).sin() * 0.4,
                ((i * 5 + j * 11) as f64 - seed).cos() * 0.4,
            );
            if i == j {
                base + c64(3.0, 0.5)
            } else {
                base
            }
        })
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for n in [1, 2, 3, 5, 17, 40] {
            let a = test_mat(n, 0.3);
            let inv = invert(&a);
            let prod = matmul(&a, &inv);
            assert!(
                prod.approx_eq(&CMatrix::identity(n), 1e-9),
                "n={n}: ‖A·A⁻¹−I‖ too large"
            );
        }
    }

    #[test]
    fn solve_matches_inverse_multiply() {
        let a = test_mat(12, 1.0);
        let b = CMatrix::from_fn(12, 4, |i, j| c64(i as f64 * 0.1, j as f64 * 0.2 - 0.3));
        let x = solve(&a, &b);
        let x2 = matmul(&invert(&a), &b);
        assert!(x.approx_eq(&x2, 1e-9));
        // Residual check.
        let r = &matmul(&a, &x) - &b;
        assert!(r.max_abs() < 1e-10, "residual {}", r.max_abs());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // A[0,0] = 0 forces a pivot swap.
        let a = CMatrix::from_vec(
            2,
            2,
            vec![C64::ZERO, c64(1.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0)],
        );
        let inv = invert(&a);
        assert!(matmul(&a, &inv).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = CMatrix::from_fn(3, 3, |i, _| c64(i as f64, 0.0)); // rank 1
        assert!(Lu::new(&a).is_err());
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = CMatrix::from_diag(&[c64(2.0, 0.0), c64(0.0, 3.0), c64(-1.0, 0.0)]);
        let d = Lu::new(&a).unwrap().det();
        // 2 * 3i * (-1) = -6i
        assert!((d - c64(0.0, -6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_flips_with_row_swap() {
        let a = CMatrix::from_vec(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]);
        let d = Lu::new(&a).unwrap().det();
        assert!((d - c64(-1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn hermitian_inverse_is_hermitian() {
        let mut a = test_mat(9, 0.7);
        a.hermitianize();
        let inv = invert(&a);
        assert!(inv.is_hermitian(1e-9));
    }

    #[test]
    fn flop_model_positive() {
        assert!(lu_flops(10, 10) > 0);
        assert_eq!(lu_flops(3, 0), 8 * 27 / 3);
    }
}
