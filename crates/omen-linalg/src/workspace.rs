//! Reusable scratch storage for the per-point hot path.
//!
//! The GF and SSE kernels perform thousands of small dense operations per
//! energy-momentum point; allocating a fresh [`CMatrix`] for every
//! temporary dominates the runtime of small-block problems and defeats
//! the cache-blocked GEMM. A [`Workspace`] is an arena of scratch slots
//! with a checkout (`take`/`give`) discipline: the first solve through a
//! workspace allocates its slots, every later solve reuses them, so the
//! steady-state hot path performs **zero heap allocations** (asserted by
//! the `integration_alloc` regression test).
//!
//! A [`WorkspacePool`] shares warm workspaces across worker threads and
//! Born iterations: the driver leases one workspace per worker per sweep
//! and returns it on drop, so the whole self-consistent loop allocates
//! only during warmup.

use crate::batched::{BatchArena, PackedB};
use crate::complex::C64;
use crate::dense::CMatrix;
use crate::lu::{LuFactors, SingularMatrix};
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// An arena of reusable scratch buffers (matrices, matrix vectors, raw
/// element buffers) plus LU factorization storage.
///
/// `take*` hands out a buffer (allocating only when the pool has no
/// suitable one); `give*` returns it for reuse. Buffers not given back are
/// simply dropped — the pool never grows beyond what was returned.
#[derive(Default)]
pub struct Workspace {
    /// Free matrices, checked out best-fit by capacity.
    free: Vec<CMatrix>,
    /// Free `Vec<CMatrix>` containers (contents already drained).
    free_vecs: Vec<Vec<CMatrix>>,
    /// Free raw element buffers, checked out best-fit by capacity.
    free_bufs: Vec<Vec<C64>>,
    /// Free pre-packed-operand packs for the batched kernels.
    free_packed_b: Vec<PackedB>,
    /// Split-complex pack arena of the batched SBSMM path.
    batch: BatchArena,
    /// LU storage shared by [`Workspace::invert_into`].
    lu: LuFactors,
}

impl Workspace {
    /// An empty workspace. Performs no allocation; slots materialize on
    /// first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Checks out a zeroed `rows × cols` matrix, reusing the smallest
    /// pooled buffer that fits (allocating a fresh one only when none
    /// does).
    pub fn take(&mut self, rows: usize, cols: usize) -> CMatrix {
        let need = rows * cols;
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, m) in self.free.iter().enumerate() {
            let cap = m.capacity();
            if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut m = self.free.swap_remove(i);
                m.resize(rows, cols);
                m
            }
            None => CMatrix::zeros(rows, cols),
        }
    }

    /// Returns a matrix to the pool.
    pub fn give(&mut self, m: CMatrix) {
        self.free.push(m);
    }

    /// Checks out an empty `Vec<CMatrix>` container (capacity reused).
    pub fn take_vec(&mut self) -> Vec<CMatrix> {
        self.free_vecs.pop().unwrap_or_default()
    }

    /// Returns a matrix vector: its matrices go back to the matrix pool,
    /// the emptied container to the container pool.
    pub fn give_vec(&mut self, mut v: Vec<CMatrix>) {
        for m in v.drain(..) {
            self.free.push(m);
        }
        self.free_vecs.push(v);
    }

    /// Checks out a zeroed raw buffer of `len` elements.
    pub fn take_buf(&mut self, len: usize) -> Vec<C64> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free_bufs.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut b = self.free_bufs.swap_remove(i);
                b.clear();
                b.resize(len, C64::ZERO);
                b
            }
            None => vec![C64::ZERO; len],
        }
    }

    /// Returns a raw buffer to the pool.
    pub fn give_buf(&mut self, b: Vec<C64>) {
        self.free_bufs.push(b);
    }

    /// Checks out a [`PackedB`] pack (warm when one was given back). The
    /// per-point SSE kernels pack each shared `G` block once per pair and
    /// sweep it across the three gradient directions.
    pub fn take_packed_b(&mut self) -> PackedB {
        self.free_packed_b.pop().unwrap_or_default()
    }

    /// Returns a [`PackedB`] to the pool for reuse.
    pub fn give_packed_b(&mut self, pb: PackedB) {
        self.free_packed_b.push(pb);
    }

    /// The workspace's split-complex pack arena, for routing batched
    /// multiplications ([`crate::batched::sbsmm_with`]) through
    /// workspace-held buffers instead of the thread-local arena.
    pub fn batch_arena(&mut self) -> &mut BatchArena {
        &mut self.batch
    }

    /// Writes `a⁻¹` into `out` using the workspace's LU storage. Like
    /// [`crate::lu::invert`], panics on a singular matrix (RGF diagonal
    /// blocks of a well-posed NEGF system are always invertible).
    pub fn invert_into(&mut self, a: &CMatrix, out: &mut CMatrix) {
        self.try_invert_into(a, out)
            .unwrap_or_else(|e| panic!("invert: {e} (matrix {}x{})", a.rows(), a.cols()));
    }

    /// Fallible variant of [`Workspace::invert_into`].
    pub fn try_invert_into(
        &mut self,
        a: &CMatrix,
        out: &mut CMatrix,
    ) -> Result<(), SingularMatrix> {
        self.lu.factorize(a)?;
        self.lu.invert_into(out);
        Ok(())
    }

    /// Solves `A X = B` in place (`b` becomes `X`) using the workspace's
    /// LU storage; panics on a singular matrix.
    pub fn solve_inplace(&mut self, a: &CMatrix, b: &mut CMatrix) {
        self.lu
            .factorize(a)
            .unwrap_or_else(|e| panic!("solve: {e} (matrix {}x{})", a.rows(), a.cols()));
        self.lu.solve_inplace(b);
    }

    /// Drops every pooled buffer, returning the workspace to its freshly
    /// constructed state.
    pub fn reset(&mut self) {
        self.free.clear();
        self.free_vecs.clear();
        self.free_bufs.clear();
        self.free_packed_b.clear();
        self.batch.reset();
        self.lu = LuFactors::new();
    }

    /// Approximate bytes held by pooled (checked-in) buffers.
    pub fn pooled_bytes(&self) -> usize {
        let mats: usize = self.free.iter().map(|m| m.capacity() * 16).sum();
        let bufs: usize = self.free_bufs.iter().map(|b| b.capacity() * 16).sum();
        mats + bufs
    }
}

/// A thread-safe pool of warm [`Workspace`]s.
///
/// Executors lease one workspace per worker; the lease returns it on drop,
/// so the next sweep (or the next Born iteration) reuses the warm buffers
/// instead of re-allocating them.
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Leases a workspace: a warm one when available, else a fresh one.
    pub fn lease(&self) -> WorkspaceLease<'_> {
        let ws = self
            .free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        WorkspaceLease {
            pool: Some(self),
            ws: Some(ws),
        }
    }

    /// Workspaces currently checked in.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

/// A leased [`Workspace`]; dereferences to the workspace and returns it to
/// its pool on drop.
pub struct WorkspaceLease<'a> {
    pool: Option<&'a WorkspacePool>,
    ws: Option<Workspace>,
}

impl WorkspaceLease<'_> {
    /// A lease not backed by any pool: the workspace is dropped at the end
    /// of the lease. Lets pool-agnostic code hold a `WorkspaceLease`
    /// unconditionally.
    pub fn detached() -> WorkspaceLease<'static> {
        WorkspaceLease {
            pool: None,
            ws: Some(Workspace::new()),
        }
    }
}

impl Deref for WorkspaceLease<'_> {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace lease already returned")
    }
}

impl DerefMut for WorkspaceLease<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace lease already returned")
    }
}

impl Drop for WorkspaceLease<'_> {
    fn drop(&mut self) {
        if let (Some(pool), Some(ws)) = (self.pool, self.ws.take()) {
            pool.free.lock().expect("workspace pool poisoned").push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::matmul;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut ws = Workspace::new();
        let m = ws.take(8, 8);
        let ptr = m.as_slice().as_ptr();
        ws.give(m);
        // Same size: the identical buffer comes back, zeroed.
        let m2 = ws.take(8, 8);
        assert_eq!(m2.as_slice().as_ptr(), ptr);
        assert_eq!(m2.max_abs(), 0.0);
        ws.give(m2);
        // Smaller request still reuses (capacity fits).
        let m3 = ws.take(4, 4);
        assert_eq!(m3.shape(), (4, 4));
        assert_eq!(m3.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.take(2, 2);
        let big = ws.take(16, 16);
        let sp = small.as_slice().as_ptr();
        ws.give(big);
        ws.give(small);
        // A 2x2 request must not consume the 16x16 buffer.
        let got = ws.take(2, 2);
        assert_eq!(got.as_slice().as_ptr(), sp);
    }

    #[test]
    fn vec_and_buf_pools_round_trip() {
        let mut ws = Workspace::new();
        let mut v = ws.take_vec();
        v.push(ws.take(3, 3));
        v.push(ws.take(3, 3));
        ws.give_vec(v);
        let v2 = ws.take_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 2, "container capacity reused");
        let b = ws.take_buf(64);
        assert_eq!(b.len(), 64);
        let bp = b.as_ptr();
        ws.give_buf(b);
        let b2 = ws.take_buf(32);
        assert_eq!(b2.as_ptr(), bp);
    }

    #[test]
    fn invert_into_matches_invert() {
        let a = CMatrix::from_fn(9, 9, |i, j| {
            let base = c64((i as f64 - j as f64) * 0.1, (i * j) as f64 * 0.05);
            if i == j {
                base + c64(4.0, 0.5)
            } else {
                base
            }
        });
        let mut ws = Workspace::new();
        let mut inv = ws.take(9, 9);
        ws.invert_into(&a, &mut inv);
        assert!(matmul(&a, &inv).approx_eq(&CMatrix::identity(9), 1e-9));
        assert!(inv.approx_eq(&crate::lu::invert(&a), 1e-13));
    }

    #[test]
    fn pool_lease_returns_on_drop() {
        let pool = WorkspacePool::new();
        {
            let mut lease = pool.lease();
            let m = lease.take(4, 4);
            lease.give(m);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        // The warm workspace comes back with its buffers.
        let lease = pool.lease();
        assert!(lease.pooled_bytes() >= 16 * 16);
        drop(lease);
        assert_eq!(pool.idle(), 1);
        // Detached leases never touch a pool.
        drop(WorkspaceLease::detached());
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn reset_drops_pooled_memory() {
        let mut ws = Workspace::new();
        let m = ws.take(32, 32);
        ws.give(m);
        assert!(ws.pooled_bytes() > 0);
        ws.reset();
        assert_eq!(ws.pooled_bytes(), 0);
    }
}
