//! Mixed-precision (binary16) batched multiplication with normalization —
//! the Tensor-Core SSE path of §5.4.
//!
//! The paper converts the SSE tensors to *split-complex* format (contiguous
//! real plane followed by imaginary plane), normalizes by per-tensor scale
//! factors derived from magnitudes, clamps out-of-range values, multiplies
//! in half precision and accumulates in double. Denormalization multiplies
//! by the inverse factors. Without the normalization step, the tensor values
//! (spanning ~1e-21..1e-1, Fig. 7a) underflow binary16 and the converged
//! current is wrong by ~3e-3 relative; with it, the error drops to ~1e-6.
//!
//! # Fused pack-and-convert
//!
//! Two storage strategies coexist:
//!
//! * [`SplitF16Batch`] + [`sbsmm_f16`] / [`sbsmm_f16_raw`] — plain
//!   split-complex planes swept by a scalar loop. Retained as the
//!   correctness reference.
//! * [`F16APanels`] / [`F16BPanels`] + [`sbsmm_f16_packed`] — the
//!   production path: normalization, clamping, f16 rounding **and**
//!   micro-panel packing happen in one pass over the `C64` source
//!   (`pack_from_c64`), so the transients are materialized exactly once,
//!   in half the bytes of the f64 pack buffers. At sweep time each panel
//!   is widened to `f64` staging (cache-resident, amortized across the
//!   register tiles that consume it) and accumulated by the same
//!   split-complex FMA micro-kernel as the f64 batched path — f16
//!   storage, f64 accumulation, exactly the paper's Tensor-Core
//!   configuration.

use crate::batched::{sweep_tiles, with_batch_arena, BatchDims, Strides};
use crate::complex::{c64, C64};
use crate::gemm::{fma_available, MR, NR};
use crate::half::{clamp_to_f16_range, F16};

/// Normalization policy for the f16 conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// Scale by `target / max|x|` before rounding (the paper's scheme).
    PerTensor,
    /// Store raw values (reproduces the unnormalized divergence of Fig. 7b).
    None,
}

/// Mid-range target magnitude for normalized tensors. Chosen so products of
/// two normalized values (`~target²`) stay far from both the f16 overflow
/// threshold (65504) and the subnormal floor.
pub const NORMALIZATION_TARGET: f64 = 64.0;

/// A batch of split-complex matrices stored in binary16 with a common
/// normalization factor.
#[derive(Clone, Debug)]
pub struct SplitF16Batch {
    /// Real plane, rounded to f16.
    pub re: Vec<F16>,
    /// Imaginary plane, rounded to f16.
    pub im: Vec<F16>,
    /// The multiplicative factor applied before rounding; stored value =
    /// `round_f16(x * factor)`. `1.0` when unnormalized.
    pub factor: f64,
}

impl SplitF16Batch {
    /// An empty batch, the reusable slot for
    /// [`SplitF16Batch::convert_from`]. Performs no allocation.
    pub fn empty() -> Self {
        SplitF16Batch {
            re: Vec::new(),
            im: Vec::new(),
            factor: 1.0,
        }
    }

    /// Converts a `C64` slice, choosing the factor from the slice's max
    /// magnitude when `normalization == PerTensor`.
    pub fn from_c64(data: &[C64], normalization: Normalization) -> Self {
        let mut out = SplitF16Batch::empty();
        out.convert_from(data, normalization);
        out
    }

    /// Re-converts into this batch's storage, reusing the plane buffers
    /// (allocation-free once they are large enough).
    pub fn convert_from(&mut self, data: &[C64], normalization: Normalization) {
        self.factor = norm_factor(data, normalization);
        let factor = self.factor;
        self.re.clear();
        self.im.clear();
        self.re.extend(
            data.iter()
                .map(|z| F16::from_f64(clamp_to_f16_range(z.re * factor))),
        );
        self.im.extend(
            data.iter()
                .map(|z| F16::from_f64(clamp_to_f16_range(z.im * factor))),
        );
    }

    /// Number of stored complex elements.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Reconstructs the (denormalized) `C64` values — i.e. what the f16
    /// representation actually encodes. Used for error analysis (Fig. 7a).
    pub fn to_c64(&self) -> Vec<C64> {
        let inv = 1.0 / self.factor;
        self.re
            .iter()
            .zip(self.im.iter())
            .map(|(r, i)| c64(r.to_f64() * inv, i.to_f64() * inv))
            .collect()
    }
}

/// The normalization factor for a `C64` slice: `target / max|x|` under
/// `PerTensor`, `1.0` otherwise (or for an all-zero tensor).
fn norm_factor(data: &[C64], normalization: Normalization) -> f64 {
    match normalization {
        Normalization::PerTensor => {
            let max = data
                .iter()
                .map(|z| z.re.abs().max(z.im.abs()))
                .fold(0.0, f64::max);
            if max > 0.0 {
                NORMALIZATION_TARGET / max
            } else {
                1.0
            }
        }
        Normalization::None => 1.0,
    }
}

#[inline]
fn to_f16(x: f64, factor: f64) -> F16 {
    F16::from_f64(clamp_to_f16_range(x * factor))
}

/// A batch of `m × k` matrices stored as split-complex binary16
/// **`MR`-row micro-panels** with a common normalization factor — the
/// left-operand half of the fused pack-and-convert path (see the module
/// docs). Produced in one pass over the `C64` source by
/// [`F16APanels::pack_from_c64`]; consumed by [`sbsmm_f16_packed`].
#[derive(Clone, Debug, Default)]
pub struct F16APanels {
    re: Vec<F16>,
    im: Vec<F16>,
    m: usize,
    k: usize,
    items: usize,
    /// The multiplicative factor applied before rounding; stored value =
    /// `round_f16(x * factor)`. `1.0` when unnormalized.
    pub factor: f64,
}

impl F16APanels {
    /// Empty panels, the reusable slot for [`F16APanels::pack_from_c64`].
    /// Performs no allocation.
    pub fn empty() -> Self {
        F16APanels {
            factor: 1.0,
            ..Default::default()
        }
    }

    /// Packed elements of one item: `ceil(m/MR) * MR * k`.
    #[inline]
    pub fn item_len(&self) -> usize {
        self.m.div_ceil(MR) * MR * self.k
    }

    /// Number of packed items.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Fused pack-and-convert: normalizes (factor chosen from the max
    /// magnitude of the **whole** `data` slice, matching
    /// [`SplitF16Batch::convert_from`]), clamps, rounds to binary16, and
    /// lays the result out as split-complex `MR`-row panels — one pass,
    /// reusing this batch's buffers (allocation-free once warm). Item `i`
    /// is the column-major `m × k` matrix at `data[i * stride..]`.
    pub fn pack_from_c64(
        &mut self,
        data: &[C64],
        m: usize,
        k: usize,
        items: usize,
        stride: usize,
        normalization: Normalization,
    ) {
        assert!(
            items == 0 || (items - 1) * stride + m * k <= data.len(),
            "F16APanels: data too short"
        );
        self.m = m;
        self.k = k;
        self.items = items;
        self.factor = norm_factor(data, normalization);
        let factor = self.factor;
        let ilen = self.item_len();
        self.re.resize(items * ilen, F16::ZERO);
        self.im.resize(items * ilen, F16::ZERO);
        let mp = m.div_ceil(MR);
        for it in 0..items {
            let src = &data[it * stride..it * stride + m * k];
            let dst_re = &mut self.re[it * ilen..(it + 1) * ilen];
            let dst_im = &mut self.im[it * ilen..(it + 1) * ilen];
            for ip in 0..mp {
                let ir = ip * MR;
                let rows = MR.min(m - ir);
                let base = ip * k * MR;
                for p in 0..k {
                    let col = &src[p * m..p * m + m];
                    let o = base + p * MR;
                    for i in 0..rows {
                        let z = col[ir + i];
                        dst_re[o + i] = to_f16(z.re, factor);
                        dst_im[o + i] = to_f16(z.im, factor);
                    }
                    for i in rows..MR {
                        dst_re[o + i] = F16::ZERO;
                        dst_im[o + i] = F16::ZERO;
                    }
                }
            }
        }
    }
}

/// The right-operand counterpart of [`F16APanels`]: a batch of `k × n`
/// matrices as split-complex binary16 **`NR`-column micro-panels**.
#[derive(Clone, Debug, Default)]
pub struct F16BPanels {
    re: Vec<F16>,
    im: Vec<F16>,
    k: usize,
    n: usize,
    items: usize,
    /// Normalization factor, as in [`F16APanels::factor`].
    pub factor: f64,
}

impl F16BPanels {
    /// Empty panels; buffers materialize on first pack.
    pub fn empty() -> Self {
        F16BPanels {
            factor: 1.0,
            ..Default::default()
        }
    }

    /// Packed elements of one item: `ceil(n/NR) * NR * k`.
    #[inline]
    pub fn item_len(&self) -> usize {
        self.n.div_ceil(NR) * NR * self.k
    }

    /// Number of packed items.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Fused pack-and-convert of `items` column-major `k × n` matrices;
    /// see [`F16APanels::pack_from_c64`].
    pub fn pack_from_c64(
        &mut self,
        data: &[C64],
        k: usize,
        n: usize,
        items: usize,
        stride: usize,
        normalization: Normalization,
    ) {
        assert!(
            items == 0 || (items - 1) * stride + k * n <= data.len(),
            "F16BPanels: data too short"
        );
        self.k = k;
        self.n = n;
        self.items = items;
        self.factor = norm_factor(data, normalization);
        let factor = self.factor;
        let ilen = self.item_len();
        self.re.resize(items * ilen, F16::ZERO);
        self.im.resize(items * ilen, F16::ZERO);
        let np = n.div_ceil(NR);
        for it in 0..items {
            let src = &data[it * stride..it * stride + k * n];
            let dst_re = &mut self.re[it * ilen..(it + 1) * ilen];
            let dst_im = &mut self.im[it * ilen..(it + 1) * ilen];
            for jp in 0..np {
                let jr = jp * NR;
                let cols = NR.min(n - jr);
                let base = jp * k * NR;
                for p in 0..k {
                    let o = base + p * NR;
                    for j in 0..cols {
                        let z = src[(jr + j) * k + p];
                        dst_re[o + j] = to_f16(z.re, factor);
                        dst_im[o + j] = to_f16(z.im, factor);
                    }
                    for j in cols..NR {
                        dst_re[o + j] = F16::ZERO;
                        dst_im[o + j] = F16::ZERO;
                    }
                }
            }
        }
    }
}

/// Widens f16 panel planes into `f64` staging (exact; every binary16 value
/// is representable).
fn widen(re: &[F16], im: &[F16], out_re: &mut Vec<f64>, out_im: &mut Vec<f64>) {
    out_re.resize(re.len(), 0.0);
    out_im.resize(im.len(), 0.0);
    for (d, s) in out_re.iter_mut().zip(re) {
        *d = s.to_f64();
    }
    for (d, s) in out_im.iter_mut().zip(im) {
        *d = s.to_f64();
    }
}

/// The packed mixed-precision batched multiply:
/// `C[i] += denorm · A[a_item0 + i] · B[b_item]` for `i < batch`, where the
/// operands are pre-packed f16 micro-panels and the accumulation runs in
/// `f64` through the split-complex FMA micro-kernel.
///
/// `B` is a single shared item (the transformed SSE stage-C shape, B-stride
/// 0); its panels are widened once per call, `A` items once each, both into
/// thread-local staging — zero steady-state allocations. `denorm` is
/// typically `1 / (a.factor * b.factor)`.
#[allow(clippy::too_many_arguments)]
pub fn sbsmm_f16_packed(
    dims: BatchDims,
    batch: usize,
    a: &F16APanels,
    a_item0: usize,
    b: &F16BPanels,
    b_item: usize,
    denorm: f64,
    c: &mut [C64],
    stride_c: usize,
) {
    let BatchDims { m, n, k } = dims;
    assert_eq!((a.m, a.k), (m, k), "A panel shape mismatch");
    assert_eq!((b.k, b.n), (k, n), "B panel shape mismatch");
    if batch == 0 {
        return;
    }
    assert!(a_item0 + batch <= a.items, "A panel batch out of range");
    assert!(b_item < b.items, "B panel item out of range");
    assert!(
        (batch - 1) * stride_c + m * n <= c.len(),
        "C slice too short for batch"
    );
    let fma = fma_available();
    let alen = a.item_len();
    let blen = b.item_len();
    let alpha = c64(denorm, 0.0);
    with_batch_arena(|arena| {
        let bb = &mut arena.item_b;
        widen(
            &b.re[b_item * blen..(b_item + 1) * blen],
            &b.im[b_item * blen..(b_item + 1) * blen],
            &mut bb.re,
            &mut bb.im,
        );
        for idx in 0..batch {
            let it = a_item0 + idx;
            widen(
                &a.re[it * alen..(it + 1) * alen],
                &a.im[it * alen..(it + 1) * alen],
                &mut arena.a_re,
                &mut arena.a_im,
            );
            let cv = &mut c[idx * stride_c..idx * stride_c + m * n];
            sweep_tiles(
                fma,
                m,
                n,
                k,
                alpha,
                &arena.a_re,
                &arena.a_im,
                &arena.item_b.re,
                &arena.item_b.im,
                cv,
            );
        }
    });
}

/// Strided-batched multiply in emulated Tensor-Core arithmetic:
/// `C[b] += A[b] · B[b]` where `A`, `B` are f16 split-complex batches.
///
/// Products are formed in `f32` (each factor is an exact f16 value) and
/// accumulated in `f64`, exactly the paper's configuration ("the difference
/// over accumulation \[is\] done in double-precision"). The output is
/// denormalized by `1/(factor_A · factor_B)` and accumulated into `c`.
pub fn sbsmm_f16(
    dims: BatchDims,
    batch: usize,
    a: &SplitF16Batch,
    b: &SplitF16Batch,
    c: &mut [C64],
    strides: Strides,
) {
    let denorm = 1.0 / (a.factor * b.factor);
    sbsmm_f16_raw(dims, batch, &a.re, &a.im, &b.re, &b.im, denorm, c, strides);
}

/// Plane-level variant of [`sbsmm_f16`]: operates on raw split-complex f16
/// planes with an explicit denormalization factor, so callers can slice
/// into larger tensors (the SSE stage-C loop does).
#[allow(clippy::too_many_arguments)]
pub fn sbsmm_f16_raw(
    dims: BatchDims,
    batch: usize,
    a_re: &[F16],
    a_im: &[F16],
    b_re: &[F16],
    b_im: &[F16],
    denorm: f64,
    c: &mut [C64],
    strides: Strides,
) {
    let BatchDims { m, n, k } = dims;
    assert!(
        batch == 0 || (batch - 1) * strides.a + m * k <= a_re.len(),
        "A too short"
    );
    assert_eq!(a_re.len(), a_im.len(), "A planes mismatch");
    assert!(
        batch == 0 || (batch - 1) * strides.b + k * n <= b_re.len(),
        "B too short"
    );
    assert_eq!(b_re.len(), b_im.len(), "B planes mismatch");
    assert!(
        batch == 0 || (batch - 1) * strides.c + m * n <= c.len(),
        "C too short"
    );

    for idx in 0..batch {
        let a0 = idx * strides.a;
        let b0 = idx * strides.b;
        let c0 = idx * strides.c;
        for j in 0..n {
            for i in 0..m {
                // f64 accumulators (Tensor Cores accumulate in >= f32; the
                // paper uses double for the reduction).
                let mut acc_re = 0.0f64;
                let mut acc_im = 0.0f64;
                for l in 0..k {
                    let ar = a_re[a0 + l * m + i].to_f32();
                    let ai = a_im[a0 + l * m + i].to_f32();
                    let br = b_re[b0 + j * k + l].to_f32();
                    let bi = b_im[b0 + j * k + l].to_f32();
                    // Split-complex multiply: 4 real MACs in f32.
                    acc_re += (ar * br - ai * bi) as f64;
                    acc_im += (ar * bi + ai * br) as f64;
                }
                c[c0 + j * m + i] += c64(acc_re * denorm, acc_im * denorm);
            }
        }
    }
}

/// Maximum elementwise relative representation error introduced by the f16
/// conversion of `data` under the given policy. Diagnostic for Fig. 7.
pub fn f16_representation_error(data: &[C64], normalization: Normalization) -> f64 {
    let batch = SplitF16Batch::from_c64(data, normalization);
    let back = batch.to_c64();
    let scale = data.iter().map(|z| z.abs()).fold(0.0, f64::max);
    if scale == 0.0 {
        return 0.0;
    }
    data.iter()
        .zip(back.iter())
        .map(|(x, y)| (*x - *y).abs() / scale)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::{sbsmm, BatchDims};

    fn fill(nel: usize, magnitude: f64) -> Vec<C64> {
        (0..nel)
            .map(|i| {
                let x = ((i * 37 + 11) as f64).sin();
                let y = ((i * 17 + 5) as f64).cos();
                c64(x * magnitude, y * magnitude)
            })
            .collect()
    }

    fn rel_err(a: &[C64], b: &[C64]) -> f64 {
        let scale = b.iter().map(|z| z.abs()).fold(1e-300, f64::max);
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
            / scale
    }

    #[test]
    fn normalized_multiply_close_to_f64() {
        let dims = BatchDims::square(12);
        let s = Strides::packed(dims);
        let batch = 6;
        // Small magnitudes like real SSE inputs (G ~ 1e-6 .. 1e-3).
        let a = fill(batch * s.a, 1e-5);
        let b = fill(batch * s.b, 1e-4);
        let a16 = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
        let b16 = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
        let mut c16 = vec![C64::ZERO; batch * s.c];
        sbsmm_f16(dims, batch, &a16, &b16, &mut c16, s);
        let mut c64ref = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c64ref, s);
        let err = rel_err(&c16, &c64ref);
        assert!(err < 2e-3, "normalized f16 error too large: {err}");
    }

    #[test]
    fn unnormalized_underflows_for_tiny_values() {
        let dims = BatchDims::square(8);
        let s = Strides::packed(dims);
        // Magnitude below the f16 subnormal floor: raw conversion loses all.
        let a = fill(s.a, 1e-11);
        let b = fill(s.b, 1e-11);
        let a_raw = SplitF16Batch::from_c64(&a, Normalization::None);
        let b_raw = SplitF16Batch::from_c64(&b, Normalization::None);
        let mut c_raw = vec![C64::ZERO; s.c];
        sbsmm_f16(dims, 1, &a_raw, &b_raw, &mut c_raw, s);
        assert!(
            c_raw.iter().all(|z| z.abs() == 0.0),
            "raw f16 must flush to zero"
        );

        // Normalized conversion of the same data preserves the product.
        let a_n = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
        let b_n = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
        let mut c_n = vec![C64::ZERO; s.c];
        sbsmm_f16(dims, 1, &a_n, &b_n, &mut c_n, s);
        let mut c_ref = vec![C64::ZERO; s.c];
        sbsmm(dims, 1, C64::ONE, &a, &b, C64::ZERO, &mut c_ref, s);
        assert!(rel_err(&c_n, &c_ref) < 2e-3);
    }

    #[test]
    fn clamping_prevents_infinities() {
        let data = vec![c64(1e9, -1e9); 4];
        let raw = SplitF16Batch::from_c64(&data, Normalization::None);
        assert!(raw.re.iter().all(|h| !h.is_infinite()));
        assert!(raw.im.iter().all(|h| !h.is_infinite()));
    }

    #[test]
    fn representation_error_normalized_beats_raw() {
        // Wide dynamic range like Fig. 7a: values spanning many decades.
        let data: Vec<C64> = (0..256)
            .map(|i| {
                let mag = 10f64.powf(-1.0 - 10.0 * (i as f64) / 255.0); // 1e-1..1e-11
                c64(mag * ((i as f64).sin()), -mag * ((i as f64).cos()))
            })
            .collect();
        let e_norm = f16_representation_error(&data, Normalization::PerTensor);
        let e_raw = f16_representation_error(&data, Normalization::None);
        assert!(
            e_norm < e_raw || e_raw == 0.0,
            "normalization should reduce representation error ({e_norm} vs {e_raw})"
        );
        assert!(e_norm < 1e-3);
    }

    #[test]
    fn zero_tensor_factor_is_one() {
        let z = vec![C64::ZERO; 8];
        let b = SplitF16Batch::from_c64(&z, Normalization::PerTensor);
        assert_eq!(b.factor, 1.0);
        assert!(b.to_c64().iter().all(|v| v.abs() == 0.0));
    }

    #[test]
    fn round_trip_length() {
        let data = fill(24, 1.0);
        let b = SplitF16Batch::from_c64(&data, Normalization::PerTensor);
        assert_eq!(b.len(), 24);
        assert!(!b.is_empty());
        assert_eq!(b.to_c64().len(), 24);
    }
}
