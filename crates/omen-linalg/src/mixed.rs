//! Mixed-precision (binary16) batched multiplication with normalization —
//! the Tensor-Core SSE path of §5.4.
//!
//! The paper converts the SSE tensors to *split-complex* format (contiguous
//! real plane followed by imaginary plane), normalizes by per-tensor scale
//! factors derived from magnitudes, clamps out-of-range values, multiplies
//! in half precision and accumulates in double. Denormalization multiplies
//! by the inverse factors. Without the normalization step, the tensor values
//! (spanning ~1e-21..1e-1, Fig. 7a) underflow binary16 and the converged
//! current is wrong by ~3e-3 relative; with it, the error drops to ~1e-6.

use crate::batched::{BatchDims, Strides};
use crate::complex::{c64, C64};
use crate::half::{clamp_to_f16_range, F16};

/// Normalization policy for the f16 conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// Scale by `target / max|x|` before rounding (the paper's scheme).
    PerTensor,
    /// Store raw values (reproduces the unnormalized divergence of Fig. 7b).
    None,
}

/// Mid-range target magnitude for normalized tensors. Chosen so products of
/// two normalized values (`~target²`) stay far from both the f16 overflow
/// threshold (65504) and the subnormal floor.
pub const NORMALIZATION_TARGET: f64 = 64.0;

/// A batch of split-complex matrices stored in binary16 with a common
/// normalization factor.
#[derive(Clone, Debug)]
pub struct SplitF16Batch {
    /// Real plane, rounded to f16.
    pub re: Vec<F16>,
    /// Imaginary plane, rounded to f16.
    pub im: Vec<F16>,
    /// The multiplicative factor applied before rounding; stored value =
    /// `round_f16(x * factor)`. `1.0` when unnormalized.
    pub factor: f64,
}

impl SplitF16Batch {
    /// An empty batch, the reusable slot for
    /// [`SplitF16Batch::convert_from`]. Performs no allocation.
    pub fn empty() -> Self {
        SplitF16Batch {
            re: Vec::new(),
            im: Vec::new(),
            factor: 1.0,
        }
    }

    /// Converts a `C64` slice, choosing the factor from the slice's max
    /// magnitude when `normalization == PerTensor`.
    pub fn from_c64(data: &[C64], normalization: Normalization) -> Self {
        let mut out = SplitF16Batch::empty();
        out.convert_from(data, normalization);
        out
    }

    /// Re-converts into this batch's storage, reusing the plane buffers
    /// (allocation-free once they are large enough).
    pub fn convert_from(&mut self, data: &[C64], normalization: Normalization) {
        self.factor = match normalization {
            Normalization::PerTensor => {
                let max = data
                    .iter()
                    .map(|z| z.re.abs().max(z.im.abs()))
                    .fold(0.0, f64::max);
                if max > 0.0 {
                    NORMALIZATION_TARGET / max
                } else {
                    1.0
                }
            }
            Normalization::None => 1.0,
        };
        let factor = self.factor;
        self.re.clear();
        self.im.clear();
        self.re.extend(
            data.iter()
                .map(|z| F16::from_f64(clamp_to_f16_range(z.re * factor))),
        );
        self.im.extend(
            data.iter()
                .map(|z| F16::from_f64(clamp_to_f16_range(z.im * factor))),
        );
    }

    /// Number of stored complex elements.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Reconstructs the (denormalized) `C64` values — i.e. what the f16
    /// representation actually encodes. Used for error analysis (Fig. 7a).
    pub fn to_c64(&self) -> Vec<C64> {
        let inv = 1.0 / self.factor;
        self.re
            .iter()
            .zip(self.im.iter())
            .map(|(r, i)| c64(r.to_f64() * inv, i.to_f64() * inv))
            .collect()
    }
}

/// Strided-batched multiply in emulated Tensor-Core arithmetic:
/// `C[b] += A[b] · B[b]` where `A`, `B` are f16 split-complex batches.
///
/// Products are formed in `f32` (each factor is an exact f16 value) and
/// accumulated in `f64`, exactly the paper's configuration ("the difference
/// over accumulation [is] done in double-precision"). The output is
/// denormalized by `1/(factor_A · factor_B)` and accumulated into `c`.
pub fn sbsmm_f16(
    dims: BatchDims,
    batch: usize,
    a: &SplitF16Batch,
    b: &SplitF16Batch,
    c: &mut [C64],
    strides: Strides,
) {
    let denorm = 1.0 / (a.factor * b.factor);
    sbsmm_f16_raw(dims, batch, &a.re, &a.im, &b.re, &b.im, denorm, c, strides);
}

/// Plane-level variant of [`sbsmm_f16`]: operates on raw split-complex f16
/// planes with an explicit denormalization factor, so callers can slice
/// into larger tensors (the SSE stage-C loop does).
#[allow(clippy::too_many_arguments)]
pub fn sbsmm_f16_raw(
    dims: BatchDims,
    batch: usize,
    a_re: &[F16],
    a_im: &[F16],
    b_re: &[F16],
    b_im: &[F16],
    denorm: f64,
    c: &mut [C64],
    strides: Strides,
) {
    let BatchDims { m, n, k } = dims;
    assert!(
        batch == 0 || (batch - 1) * strides.a + m * k <= a_re.len(),
        "A too short"
    );
    assert_eq!(a_re.len(), a_im.len(), "A planes mismatch");
    assert!(
        batch == 0 || (batch - 1) * strides.b + k * n <= b_re.len(),
        "B too short"
    );
    assert_eq!(b_re.len(), b_im.len(), "B planes mismatch");
    assert!(
        batch == 0 || (batch - 1) * strides.c + m * n <= c.len(),
        "C too short"
    );

    for idx in 0..batch {
        let a0 = idx * strides.a;
        let b0 = idx * strides.b;
        let c0 = idx * strides.c;
        for j in 0..n {
            for i in 0..m {
                // f64 accumulators (Tensor Cores accumulate in >= f32; the
                // paper uses double for the reduction).
                let mut acc_re = 0.0f64;
                let mut acc_im = 0.0f64;
                for l in 0..k {
                    let ar = a_re[a0 + l * m + i].to_f32();
                    let ai = a_im[a0 + l * m + i].to_f32();
                    let br = b_re[b0 + j * k + l].to_f32();
                    let bi = b_im[b0 + j * k + l].to_f32();
                    // Split-complex multiply: 4 real MACs in f32.
                    acc_re += (ar * br - ai * bi) as f64;
                    acc_im += (ar * bi + ai * br) as f64;
                }
                c[c0 + j * m + i] += c64(acc_re * denorm, acc_im * denorm);
            }
        }
    }
}

/// Maximum elementwise relative representation error introduced by the f16
/// conversion of `data` under the given policy. Diagnostic for Fig. 7.
pub fn f16_representation_error(data: &[C64], normalization: Normalization) -> f64 {
    let batch = SplitF16Batch::from_c64(data, normalization);
    let back = batch.to_c64();
    let scale = data.iter().map(|z| z.abs()).fold(0.0, f64::max);
    if scale == 0.0 {
        return 0.0;
    }
    data.iter()
        .zip(back.iter())
        .map(|(x, y)| (*x - *y).abs() / scale)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::{sbsmm, BatchDims};

    fn fill(nel: usize, magnitude: f64) -> Vec<C64> {
        (0..nel)
            .map(|i| {
                let x = ((i * 37 + 11) as f64).sin();
                let y = ((i * 17 + 5) as f64).cos();
                c64(x * magnitude, y * magnitude)
            })
            .collect()
    }

    fn rel_err(a: &[C64], b: &[C64]) -> f64 {
        let scale = b.iter().map(|z| z.abs()).fold(1e-300, f64::max);
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
            / scale
    }

    #[test]
    fn normalized_multiply_close_to_f64() {
        let dims = BatchDims::square(12);
        let s = Strides::packed(dims);
        let batch = 6;
        // Small magnitudes like real SSE inputs (G ~ 1e-6 .. 1e-3).
        let a = fill(batch * s.a, 1e-5);
        let b = fill(batch * s.b, 1e-4);
        let a16 = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
        let b16 = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
        let mut c16 = vec![C64::ZERO; batch * s.c];
        sbsmm_f16(dims, batch, &a16, &b16, &mut c16, s);
        let mut c64ref = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c64ref, s);
        let err = rel_err(&c16, &c64ref);
        assert!(err < 2e-3, "normalized f16 error too large: {err}");
    }

    #[test]
    fn unnormalized_underflows_for_tiny_values() {
        let dims = BatchDims::square(8);
        let s = Strides::packed(dims);
        // Magnitude below the f16 subnormal floor: raw conversion loses all.
        let a = fill(s.a, 1e-11);
        let b = fill(s.b, 1e-11);
        let a_raw = SplitF16Batch::from_c64(&a, Normalization::None);
        let b_raw = SplitF16Batch::from_c64(&b, Normalization::None);
        let mut c_raw = vec![C64::ZERO; s.c];
        sbsmm_f16(dims, 1, &a_raw, &b_raw, &mut c_raw, s);
        assert!(
            c_raw.iter().all(|z| z.abs() == 0.0),
            "raw f16 must flush to zero"
        );

        // Normalized conversion of the same data preserves the product.
        let a_n = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
        let b_n = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
        let mut c_n = vec![C64::ZERO; s.c];
        sbsmm_f16(dims, 1, &a_n, &b_n, &mut c_n, s);
        let mut c_ref = vec![C64::ZERO; s.c];
        sbsmm(dims, 1, C64::ONE, &a, &b, C64::ZERO, &mut c_ref, s);
        assert!(rel_err(&c_n, &c_ref) < 2e-3);
    }

    #[test]
    fn clamping_prevents_infinities() {
        let data = vec![c64(1e9, -1e9); 4];
        let raw = SplitF16Batch::from_c64(&data, Normalization::None);
        assert!(raw.re.iter().all(|h| !h.is_infinite()));
        assert!(raw.im.iter().all(|h| !h.is_infinite()));
    }

    #[test]
    fn representation_error_normalized_beats_raw() {
        // Wide dynamic range like Fig. 7a: values spanning many decades.
        let data: Vec<C64> = (0..256)
            .map(|i| {
                let mag = 10f64.powf(-1.0 - 10.0 * (i as f64) / 255.0); // 1e-1..1e-11
                c64(mag * ((i as f64).sin()), -mag * ((i as f64).cos()))
            })
            .collect();
        let e_norm = f16_representation_error(&data, Normalization::PerTensor);
        let e_raw = f16_representation_error(&data, Normalization::None);
        assert!(
            e_norm < e_raw || e_raw == 0.0,
            "normalization should reduce representation error ({e_norm} vs {e_raw})"
        );
        assert!(e_norm < 1e-3);
    }

    #[test]
    fn zero_tensor_factor_is_one() {
        let z = vec![C64::ZERO; 8];
        let b = SplitF16Batch::from_c64(&z, Normalization::PerTensor);
        assert_eq!(b.factor, 1.0);
        assert!(b.to_c64().iter().all(|v| v.abs() == 0.0));
    }

    #[test]
    fn round_trip_length() {
        let data = fill(24, 1.0);
        let b = SplitF16Batch::from_c64(&data, Normalization::PerTensor);
        assert_eq!(b.len(), 24);
        assert!(!b.is_empty());
        assert_eq!(b.to_c64().len(), 24);
    }
}
