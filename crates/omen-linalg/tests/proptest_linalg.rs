//! Property-based tests for the linear-algebra substrate.

use omen_linalg::*;
use proptest::prelude::*;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| c64(re, im))
}

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = CMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(arb_c64(), r * c)
            .prop_map(move |data| CMatrix::from_vec(r, c, data))
    })
}

fn arb_square(max_dim: usize) -> impl Strategy<Value = CMatrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(arb_c64(), n * n)
            .prop_map(move |data| CMatrix::from_vec(n, n, data))
    })
}

/// A well-conditioned square matrix: random + diagonal dominance.
fn arb_invertible(max_dim: usize) -> impl Strategy<Value = CMatrix> {
    arb_square(max_dim).prop_map(|m| {
        let n = m.rows();
        let mut out = m;
        for i in 0..n {
            // Diagonal dominance: row sums bounded by 10*n, so add margin.
            out[(i, i)] += c64(30.0 * n as f64, 5.0);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), z in arb_c64()) {
        // Commutativity and distributivity within fp tolerance.
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-10);
        let lhs = z * (a + b);
        let rhs = z * a + z * b;
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conj_is_ring_homomorphism(a in arb_c64(), b in arb_c64()) {
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-10);
        prop_assert!(((a + b).conj() - (a.conj() + b.conj())).abs() < 1e-12);
    }

    #[test]
    fn gemm_matches_naive(a in arb_matrix(6), b in arb_matrix(6)) {
        prop_assume!(a.cols() == b.rows());
        let got = matmul(&a, &b);
        let want = CMatrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a[(i, k)] * b[(k, j)]).sum()
        });
        prop_assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn gemm_transpose_consistency(a in arb_matrix(5), b in arb_matrix(5)) {
        prop_assume!(a.cols() == b.rows());
        // (A B)^T == B^T A^T computed via the T paths.
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul_op(&b, Op::T, &a, Op::T);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        // (A B)† == B† A† via the C paths.
        let lhs_h = matmul(&a, &b).adjoint();
        let rhs_h = matmul_op(&b, Op::C, &a, Op::C);
        prop_assert!(lhs_h.approx_eq(&rhs_h, 1e-9));
    }

    #[test]
    fn packed_gemm_matches_naive_all_ops(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        ops in (0usize..3, 0usize..3),
        coeffs in (arb_c64(), arb_c64()),
        seed in 0u64..1_000_000,
    ) {
        // The packed cache-blocked kernel must reproduce the retained naive
        // reference for every Op combination, non-square shapes, and
        // alpha/beta away from {0, 1}. Sizes straddle SMALL_DIM so both the
        // direct and the packed path are exercised.
        let to_op = |x: usize| [Op::N, Op::T, Op::C][x];
        let (op_a, op_b) = (to_op(ops.0), to_op(ops.1));
        let (alpha, beta) = coeffs;
        let fill = |r: usize, c: usize, s: u64| {
            CMatrix::from_fn(r, c, |i, j| {
                let t = (i * 31 + j * 17) as f64 + s as f64 * 1e-5;
                c64((t * 0.7).sin(), (t * 1.3).cos())
            })
        };
        let a = match op_a { Op::N => fill(m, k, seed), _ => fill(k, m, seed) };
        let b = match op_b { Op::N => fill(k, n, seed + 1), _ => fill(n, k, seed + 1) };
        let c0 = fill(m, n, seed + 2);
        let mut got = c0.clone();
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut got);
        let mut want = c0.clone();
        gemm_naive(alpha, &a, op_a, &b, op_b, beta, &mut want);
        // Tile reassociation vs. the naive order: bounded by a few ulps of
        // the accumulated magnitude (|alpha|·k·max|a|·max|b| + |beta·c|).
        let scale = alpha.abs() * k as f64 * a.max_abs() * b.max_abs()
            + beta.abs() * c0.max_abs();
        let tol = 4.0 * f64::EPSILON * scale.max(1.0);
        let dev = (&got - &want).max_abs();
        prop_assert!(dev <= tol, "({op_a:?},{op_b:?}) {m}x{n}x{k}: dev {dev:e} > tol {tol:e}");
    }

    #[test]
    fn into_variants_are_consistent(a in arb_matrix(20), b in arb_matrix(20), c in arb_matrix(20)) {
        prop_assume!(a.cols() == b.rows() && b.cols() == c.rows());
        let mut out = CMatrix::zeros(0, 0);
        matmul_into(&a, &b, &mut out);
        prop_assert!(out.approx_eq(&matmul(&a, &b), 0.0));
        let mut scratch = CMatrix::zeros(0, 0);
        matmul3_into(&a, &b, &c, &mut scratch, &mut out);
        prop_assert!(out.approx_eq(&matmul3(&a, &b, &c), 0.0));
        matmul_op_into(&b, Op::C, &a, Op::C, &mut out);
        prop_assert!(out.approx_eq(&matmul_op(&b, Op::C, &a, Op::C), 0.0));
    }

    #[test]
    fn workspace_invert_matches_lu(a in arb_invertible(10)) {
        let mut ws = Workspace::new();
        let mut inv = ws.take(a.rows(), a.rows());
        ws.invert_into(&a, &mut inv);
        prop_assert!(inv.approx_eq(&invert(&a), 1e-12));
        ws.give(inv);
    }

    #[test]
    fn lu_inverse_round_trip(a in arb_invertible(8)) {
        let inv = invert(&a);
        let eye = matmul(&a, &inv);
        prop_assert!(eye.approx_eq(&CMatrix::identity(a.rows()), 1e-7));
    }

    #[test]
    fn lu_solve_residual(a in arb_invertible(8)) {
        let n = a.rows();
        let b = CMatrix::from_fn(n, 3, |i, j| c64(i as f64 - j as f64, 1.0));
        let x = solve(&a, &b);
        let r = &matmul(&a, &x) - &b;
        prop_assert!(r.max_abs() < 1e-7, "residual {}", r.max_abs());
    }

    #[test]
    fn sparse_dense_round_trip(a in arb_matrix(8)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        prop_assert!(csr.to_dense().approx_eq(&a, 0.0));
        let csc = csr.to_csc();
        prop_assert!(csc.to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    fn csrmm_equals_gemm(a in arb_matrix(6), b in arb_matrix(6)) {
        prop_assume!(a.cols() == b.rows());
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let mut c = CMatrix::zeros(a.rows(), b.cols());
        csrmm(C64::ONE, &csr, Op::N, &b, C64::ZERO, &mut c);
        prop_assert!(c.approx_eq(&matmul(&a, &b), 1e-9));
    }

    #[test]
    fn gemmi_equals_gemm(a in arb_matrix(6), b in arb_matrix(6)) {
        prop_assume!(a.cols() == b.rows());
        let csc = CscMatrix::from_dense(&b, 0.0);
        let mut c = CMatrix::zeros(a.rows(), b.cols());
        gemmi(C64::ONE, &a, &csc, C64::ZERO, &mut c);
        prop_assert!(c.approx_eq(&matmul(&a, &b), 1e-9));
    }

    #[test]
    fn f16_round_trip_monotone(x in -60000.0f64..60000.0, y in -60000.0f64..60000.0) {
        // Rounding through f16 preserves (non-strict) order.
        let rx = half::round_through_f16(x);
        let ry = half::round_through_f16(y);
        if x <= y {
            prop_assert!(rx <= ry, "monotonicity violated: {x} -> {rx}, {y} -> {ry}");
        }
    }

    #[test]
    fn f16_relative_error_bound(x in 1e-4f64..6e4) {
        let r = half::round_through_f16(x);
        prop_assert!(((r - x) / x).abs() <= 2.0f64.powi(-11));
    }

    #[test]
    fn f16_clamp_always_finite(x in proptest::num::f64::NORMAL) {
        let h = F16::from_f64(half::clamp_to_f16_range(x));
        prop_assert!(!h.is_infinite());
        prop_assert!(!h.is_nan());
    }

    #[test]
    fn packed_sbsmm_matches_scalar(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        batch in 0usize..6,
        gaps in (0usize..3, 0usize..3, 0usize..3),
        shared in 0usize..3,
        coeffs in (arb_c64(), arb_c64()),
        seed in 0u64..1_000_000,
    ) {
        // The packed micro-kernel batch path must reproduce the retained
        // scalar loop for non-square dims, padded strides, any batch size,
        // and alpha/beta away from {0, 1}. `shared` optionally pins the A
        // or B stride to 0 (the transformed-kernel shapes).
        let dims = BatchDims { m, n, k };
        let (alpha, beta) = coeffs;
        let mut s = Strides {
            a: m * k + gaps.0,
            b: k * n + gaps.1,
            c: m * n + gaps.2,
        };
        if shared == 1 { s.a = 0; }
        if shared == 2 { s.b = 0; }
        let fill = |len: usize, tag: u64| -> Vec<C64> {
            (0..len)
                .map(|i| {
                    let t = i as f64 * 0.61 + (seed + tag) as f64 * 1e-4;
                    c64((t * 1.1).sin(), (t * 0.7).cos())
                })
                .collect()
        };
        let alen = if s.a == 0 { m * k } else { batch.max(1) * s.a };
        let blen = if s.b == 0 { k * n } else { batch.max(1) * s.b };
        let a = fill(alen, 1);
        let b = fill(blen, 2);
        let c0 = fill(batch.max(1) * s.c, 3);
        let mut got = c0.clone();
        let mut want = c0.clone();
        sbsmm(dims, batch, alpha, &a, &b, beta, &mut got, s);
        sbsmm_scalar(dims, batch, alpha, &a, &b, beta, &mut want, s);
        // Tile reassociation vs. the scalar order: a few ulps of the
        // accumulated magnitude.
        let amax = a.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let bmax = b.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let cmax = c0.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let scale = alpha.abs() * k as f64 * amax * bmax + beta.abs() * cmax;
        let tol = 8.0 * f64::EPSILON * scale.max(1.0);
        let dev = got
            .iter()
            .zip(&want)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        prop_assert!(dev <= tol, "{m}x{n}x{k} b{batch}: dev {dev:e} > tol {tol:e}");
    }

    #[test]
    fn sbsmm_par_matches_serial_packed(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        batch in 1usize..8,
        coeffs in (arb_c64(), arb_c64()),
    ) {
        let dims = BatchDims { m, n, k };
        let s = Strides::packed(dims);
        let (alpha, beta) = coeffs;
        let mk = |len: usize, tag: usize| -> Vec<C64> {
            (0..len)
                .map(|i| c64(((i * 7 + tag) as f64).sin(), ((i * 3 + tag) as f64).cos()))
                .collect()
        };
        let a = mk(batch * s.a, 1);
        let b = mk(batch * s.b, 2);
        let c0 = mk(batch * s.c, 3);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        sbsmm(dims, batch, alpha, &a, &b, beta, &mut c1, s);
        sbsmm_par(dims, batch, alpha, &a, &b, beta, &mut c2, s).unwrap();
        let dev = c1.iter().zip(&c2).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max);
        prop_assert!(dev == 0.0, "parallel must be bit-identical, dev {dev:e}");
    }

    #[test]
    fn sbsmm_par_rejects_overlapping_strides(
        n in 1usize..8,
        deficit in 1usize..8,
        batch in 2usize..5,
    ) {
        // Any C stride short of one item is a typed error, not a panic.
        let dims = BatchDims::square(n);
        let item = n * n;
        prop_assume!(deficit <= item);
        let s = Strides { a: item, b: item, c: item - deficit };
        let a = vec![C64::ZERO; batch * item];
        let b = vec![C64::ZERO; batch * item];
        let mut c = vec![C64::ZERO; batch * item];
        let err = sbsmm_par(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        prop_assert_eq!(
            err,
            Err(StrideOverlap { stride_c: item - deficit, item_len: item })
        );
    }

    #[test]
    fn f16_packed_matches_scalar_f16(
        m in 1usize..14,
        n in 1usize..14,
        k in 1usize..14,
        batch in 1usize..5,
        mag in -6.0f64..0.0,
    ) {
        // The fused f16 panel path (f16 storage, f64 accumulation through
        // the micro-kernel) must agree with the scalar split-plane
        // reference to f32-accumulation tolerance: both quantize
        // identically, only the accumulation arithmetic differs.
        let dims = BatchDims { m, n, k };
        let magnitude = 10f64.powf(mag);
        let mk = |len: usize, tag: usize| -> Vec<C64> {
            (0..len)
                .map(|i| {
                    c64(
                        ((i * 37 + tag) as f64).sin() * magnitude,
                        ((i * 17 + tag) as f64).cos() * magnitude,
                    )
                })
                .collect()
        };
        let a = mk(batch * m * k, 1);
        let b = mk(k * n, 2); // shared B (stage-C shape)
        let s = Strides { a: m * k, b: 0, c: m * n };
        let a16 = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
        let b16 = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
        let mut c_ref = vec![C64::ZERO; batch * m * n];
        mixed::sbsmm_f16_raw(
            dims, batch, &a16.re, &a16.im, &b16.re, &b16.im,
            1.0 / (a16.factor * b16.factor), &mut c_ref, s,
        );
        let mut ap = F16APanels::empty();
        ap.pack_from_c64(&a, m, k, batch, m * k, Normalization::PerTensor);
        let mut bp = F16BPanels::empty();
        bp.pack_from_c64(&b, k, n, 1, k * n, Normalization::PerTensor);
        prop_assert_eq!(ap.items(), batch);
        let denorm = 1.0 / (ap.factor * bp.factor);
        let mut c_got = vec![C64::ZERO; batch * m * n];
        sbsmm_f16_packed(dims, batch, &ap, 0, &bp, 0, denorm, &mut c_got, m * n);
        // Identical quantization => identical factors.
        prop_assert_eq!(ap.factor, a16.factor);
        prop_assert_eq!(bp.factor, b16.factor);
        let scale = c_ref.iter().map(|z| z.abs()).fold(1e-300, f64::max);
        let dev = c_got
            .iter()
            .zip(&c_ref)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        // f32 product-difference rounding in the scalar path vs exact f64
        // FMA in the packed path: bounded by k ulps of f32.
        let tol = 4.0 * k as f64 * (f32::EPSILON as f64) * scale;
        prop_assert!(dev <= tol, "{m}x{n}x{k}: dev {dev:e} > tol {tol:e}");
    }

    #[test]
    fn sbsmm_matches_gemm(batch in 1usize..5, n in 1usize..8) {
        let dims = BatchDims::square(n);
        let s = Strides::packed(dims);
        let mk = |seed: usize| -> Vec<C64> {
            (0..batch * n * n)
                .map(|i| c64(((i * 7 + seed) as f64).sin(), ((i * 3 + seed) as f64).cos()))
                .collect()
        };
        let a = mk(1);
        let b = mk(2);
        let mut c = vec![C64::ZERO; batch * s.c];
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        for idx in 0..batch {
            let am = CMatrix::from_vec(n, n, a[idx * s.a..(idx + 1) * s.a].to_vec());
            let bm = CMatrix::from_vec(n, n, b[idx * s.b..(idx + 1) * s.b].to_vec());
            let cm = matmul(&am, &bm);
            let got = CMatrix::from_vec(n, n, c[idx * s.c..(idx + 1) * s.c].to_vec());
            prop_assert!(got.approx_eq(&cm, 1e-9));
        }
    }

    #[test]
    fn block_tridiag_dense_hermitian(nb in 1usize..5, bs in 1usize..4) {
        let mut m = BlockTriDiag::zeros(nb, bs);
        for b in 0..nb {
            m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| c64((i + j + b) as f64, (i as f64) - (j as f64)));
            m.diag[b].hermitianize();
        }
        for b in 0..nb.saturating_sub(1) {
            m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| c64(i as f64, j as f64 + b as f64));
            m.lower[b] = m.upper[b].adjoint();
        }
        prop_assert!(m.is_hermitian(1e-12));
        prop_assert!(m.to_dense().is_hermitian(1e-12));
    }
}
