//! Property-based tests on the SSE kernels: schedule equivalence and
//! linearity must hold for arbitrary grid shapes and random inputs.

use omen_device::{DeviceConfig, DeviceStructure};
use omen_sse::testutil::random_inputs;
use omen_sse::{sse_reference, sse_transformed, GLayout, SseProblem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn transformed_always_matches_reference(
        nk in 1usize..3,
        ne in 4usize..8,
        nw in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(ne > nw);
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = SseProblem::new(&dev, nk, ne, nk, nw, 1.0, 1.0);
        let (gl, gg, dl, dg) = random_inputs(&prob, seed);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let gla = gl.to_layout(GLayout::AtomMajor);
        let gga = gg.to_layout(GLayout::AtomMajor);
        let transformed = sse_transformed(&prob, &gla, &gga, &dl, &dg);
        let scale = reference.sigma_l.max_abs().max(1e-300);
        prop_assert!(transformed.sigma_l.max_deviation(&reference.sigma_l) / scale < 1e-11);
        let scale_p = reference.pi_l.max_abs().max(1e-300);
        prop_assert!(transformed.pi_l.max_deviation(&reference.pi_l) / scale_p < 1e-11);
        // The transformation must never add flops.
        prop_assert!(transformed.flops <= reference.flops);
    }

    #[test]
    fn sse_linear_in_g(seed in 0u64..1000) {
        // Σ[α·G] == α·Σ[G] and Π[α·G] == α²·Π[G] (bilinear in G).
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = SseProblem::new(&dev, 2, 6, 2, 2, 1.0, 1.0);
        let (gl, gg, dl, dg) = random_inputs(&prob, seed);
        let mut gl2 = gl.clone();
        let mut gg2 = gg.clone();
        for v in gl2.as_mut_slice() { *v = v.scale(2.0); }
        for v in gg2.as_mut_slice() { *v = v.scale(2.0); }
        let base = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let scaled = sse_reference(&prob, &gl2, &gg2, &dl, &dg);
        let mut worst_sigma = 0.0f64;
        for (x, y) in base.sigma_l.as_slice().iter().zip(scaled.sigma_l.as_slice()) {
            worst_sigma = worst_sigma.max((y.scale(0.5) - *x).abs());
        }
        prop_assert!(worst_sigma / base.sigma_l.max_abs().max(1e-300) < 1e-12);
        let mut worst_pi = 0.0f64;
        for (x, y) in base.pi_l.as_slice().iter().zip(scaled.pi_l.as_slice()) {
            worst_pi = worst_pi.max((y.scale(0.25) - *x).abs());
        }
        prop_assert!(worst_pi / base.pi_l.max_abs().max(1e-300) < 1e-12);
    }
}
