//! Multi-dimensional Green's-function and self-energy tensors with
//! switchable data layouts.
//!
//! §4 of the paper: evaluating Eqs. (2)–(3) needs two 5-D electron tensors
//! of shape `[Nkz, NE, Na, Norb, Norb]` and two 6-D phonon tensors of shape
//! `[Nqz, Nω, Na, Nb+1, 3, 3]`. The data-layout transformation of Fig. 6
//! (step ❷) permutes the outer dimensions so that the innermost batched
//! dimension is accessed with constant stride. Both layouts are provided
//! and convertible; the kernels assert the layout they need.

use omen_linalg::C64;

/// Layout of the electron-side tensors (`G^≷`, `Σ^≷`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GLayout {
    /// `[kz][E][a]` — the physics-natural OMEN order (pair-major).
    PairMajor,
    /// `[a][kz][E]` — the DaCe order: energy contiguous per atom, enabling
    /// constant-stride batched GEMM over `E`.
    AtomMajor,
}

/// A 5-D electron tensor: `Norb × Norb` complex blocks indexed by
/// `(kz, E, atom)`.
#[derive(Clone, Debug)]
pub struct GTensor {
    /// Momentum points.
    pub nk: usize,
    /// Energy points.
    pub ne: usize,
    /// Atoms.
    pub na: usize,
    /// Orbitals per atom.
    pub norb: usize,
    /// Current layout.
    pub layout: GLayout,
    data: Vec<C64>,
}

impl GTensor {
    /// Zero-initialized tensor.
    pub fn zeros(nk: usize, ne: usize, na: usize, norb: usize, layout: GLayout) -> Self {
        GTensor {
            nk,
            ne,
            na,
            norb,
            layout,
            data: vec![C64::ZERO; nk * ne * na * norb * norb],
        }
    }

    /// Reshapes to the given dimensions and layout with zeroed contents,
    /// reusing the backing buffer (allocation-free once the buffer is
    /// large enough — the reusable-output path of the SSE kernels).
    pub fn reset(&mut self, nk: usize, ne: usize, na: usize, norb: usize, layout: GLayout) {
        self.nk = nk;
        self.ne = ne;
        self.na = na;
        self.norb = norb;
        self.layout = layout;
        self.data.clear();
        self.data.resize(nk * ne * na * norb * norb, C64::ZERO);
    }

    /// Block size in elements (`Norb²`).
    #[inline]
    pub fn bsz(&self) -> usize {
        self.norb * self.norb
    }

    /// Linear element offset of block `(k, e, a)`.
    #[inline]
    pub fn offset(&self, k: usize, e: usize, a: usize) -> usize {
        debug_assert!(k < self.nk && e < self.ne && a < self.na);
        let blk = match self.layout {
            GLayout::PairMajor => (k * self.ne + e) * self.na + a,
            GLayout::AtomMajor => (a * self.nk + k) * self.ne + e,
        };
        blk * self.bsz()
    }

    /// Borrows block `(k, e, a)` (column-major `Norb × Norb`).
    #[inline]
    pub fn block(&self, k: usize, e: usize, a: usize) -> &[C64] {
        let o = self.offset(k, e, a);
        &self.data[o..o + self.bsz()]
    }

    /// Mutable block access.
    #[inline]
    pub fn block_mut(&mut self, k: usize, e: usize, a: usize) -> &mut [C64] {
        let o = self.offset(k, e, a);
        let b = self.bsz();
        &mut self.data[o..o + b]
    }

    /// Full data slice (layout-ordered).
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Full mutable data slice.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer (layout-ordered).
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Returns a copy converted to `layout` (no-op copy if identical).
    pub fn to_layout(&self, layout: GLayout) -> GTensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = GTensor::zeros(0, 0, 0, 0, layout);
        self.to_layout_into(layout, &mut out);
        out
    }

    /// Converts into a reusable destination tensor (any current shape);
    /// allocation-free once `out`'s backing buffer is large enough — the
    /// layout-normalization path of the stateful SSE kernels and the
    /// driver's mixing step.
    pub fn to_layout_into(&self, layout: GLayout, out: &mut GTensor) {
        out.reset(self.nk, self.ne, self.na, self.norb, layout);
        let bsz = self.bsz();
        for k in 0..self.nk {
            for e in 0..self.ne {
                for a in 0..self.na {
                    let src = self.offset(k, e, a);
                    let dst = out.offset(k, e, a);
                    out.data[dst..dst + bsz].copy_from_slice(&self.data[src..src + bsz]);
                }
            }
        }
    }

    /// Max elementwise deviation against another tensor (any layouts).
    pub fn max_deviation(&self, other: &GTensor) -> f64 {
        assert_eq!(
            (self.nk, self.ne, self.na, self.norb),
            (other.nk, other.ne, other.na, other.norb),
            "tensor shape mismatch"
        );
        let mut worst = 0.0f64;
        for k in 0..self.nk {
            for e in 0..self.ne {
                for a in 0..self.na {
                    let x = self.block(k, e, a);
                    let y = other.block(k, e, a);
                    for (u, v) in x.iter().zip(y) {
                        worst = worst.max((*u - *v).abs());
                    }
                }
            }
        }
        worst
    }

    /// Largest element magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Total bytes of the payload (communication-volume bookkeeping).
    pub fn bytes(&self) -> usize {
        self.data.len() * 16
    }
}

/// Layout of the phonon-side tensors (`D^≷`, `Π^≷`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DLayout {
    /// `[qz][ω][entry]` — OMEN order.
    PointMajor,
    /// `[entry][qz][ω]` — DaCe order (ω contiguous per entry).
    EntryMajor,
}

/// A 6-D phonon tensor: `3 × 3` complex blocks indexed by `(qz, ω, entry)`
/// where entries `0..npairs` are the directed neighbor pairs (`D_ab`) and
/// entries `npairs..npairs+na` are the atom diagonals (`D_aa`) — together
/// the `Nb + 1` blocks per atom of the paper.
#[derive(Clone, Debug)]
pub struct DTensor {
    /// Momentum points.
    pub nq: usize,
    /// Frequency points.
    pub nw: usize,
    /// Directed neighbor pairs.
    pub npairs: usize,
    /// Atoms (diagonal entries).
    pub na: usize,
    /// Current layout.
    pub layout: DLayout,
    data: Vec<C64>,
}

impl Default for GTensor {
    /// A zero-size pair-major tensor; performs no allocation.
    fn default() -> Self {
        GTensor::zeros(0, 0, 0, 0, GLayout::PairMajor)
    }
}

impl Default for DTensor {
    /// A zero-size point-major tensor; performs no allocation.
    fn default() -> Self {
        DTensor::zeros(0, 0, 0, 0, DLayout::PointMajor)
    }
}

/// Block size of phonon entries: `3 × 3`.
pub const D_BSZ: usize = 9;

impl DTensor {
    /// Zero-initialized tensor.
    pub fn zeros(nq: usize, nw: usize, npairs: usize, na: usize, layout: DLayout) -> Self {
        DTensor {
            nq,
            nw,
            npairs,
            na,
            layout,
            data: vec![C64::ZERO; nq * nw * (npairs + na) * D_BSZ],
        }
    }

    /// Reshapes to the given dimensions and layout with zeroed contents,
    /// reusing the backing buffer (see [`GTensor::reset`]).
    pub fn reset(&mut self, nq: usize, nw: usize, npairs: usize, na: usize, layout: DLayout) {
        self.nq = nq;
        self.nw = nw;
        self.npairs = npairs;
        self.na = na;
        self.layout = layout;
        self.data.clear();
        self.data.resize(nq * nw * (npairs + na) * D_BSZ, C64::ZERO);
    }

    /// Total entries per `(q, ω)` point.
    #[inline]
    pub fn nentries(&self) -> usize {
        self.npairs + self.na
    }

    /// Entry index of directed pair `p`.
    #[inline]
    pub fn pair_entry(&self, p: usize) -> usize {
        debug_assert!(p < self.npairs);
        p
    }

    /// Entry index of atom diagonal `a`.
    #[inline]
    pub fn diag_entry(&self, a: usize) -> usize {
        debug_assert!(a < self.na);
        self.npairs + a
    }

    /// Linear element offset of block `(q, w, entry)`.
    #[inline]
    pub fn offset(&self, q: usize, w: usize, entry: usize) -> usize {
        debug_assert!(q < self.nq && w < self.nw && entry < self.nentries());
        let blk = match self.layout {
            DLayout::PointMajor => (q * self.nw + w) * self.nentries() + entry,
            DLayout::EntryMajor => (entry * self.nq + q) * self.nw + w,
        };
        blk * D_BSZ
    }

    /// Borrows block `(q, w, entry)` (column-major `3 × 3`).
    #[inline]
    pub fn block(&self, q: usize, w: usize, entry: usize) -> &[C64] {
        let o = self.offset(q, w, entry);
        &self.data[o..o + D_BSZ]
    }

    /// Mutable block access.
    #[inline]
    pub fn block_mut(&mut self, q: usize, w: usize, entry: usize) -> &mut [C64] {
        let o = self.offset(q, w, entry);
        &mut self.data[o..o + D_BSZ]
    }

    /// Full data slice.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Full mutable data slice.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer (layout-ordered).
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Returns a copy converted to `layout`.
    pub fn to_layout(&self, layout: DLayout) -> DTensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = DTensor::zeros(0, 0, 0, 0, layout);
        self.to_layout_into(layout, &mut out);
        out
    }

    /// Converts into a reusable destination tensor (see
    /// [`GTensor::to_layout_into`]); allocation-free once `out`'s backing
    /// buffer is large enough.
    pub fn to_layout_into(&self, layout: DLayout, out: &mut DTensor) {
        out.reset(self.nq, self.nw, self.npairs, self.na, layout);
        for q in 0..self.nq {
            for w in 0..self.nw {
                for en in 0..self.nentries() {
                    let src = self.offset(q, w, en);
                    let dst = out.offset(q, w, en);
                    out.data[dst..dst + D_BSZ].copy_from_slice(&self.data[src..src + D_BSZ]);
                }
            }
        }
    }

    /// Max elementwise deviation against another tensor.
    pub fn max_deviation(&self, other: &DTensor) -> f64 {
        assert_eq!(
            (self.nq, self.nw, self.npairs, self.na),
            (other.nq, other.nw, other.npairs, other.na),
            "tensor shape mismatch"
        );
        let mut worst = 0.0f64;
        for q in 0..self.nq {
            for w in 0..self.nw {
                for en in 0..self.nentries() {
                    let x = self.block(q, w, en);
                    let y = other.block(q, w, en);
                    for (u, v) in x.iter().zip(y) {
                        worst = worst.max((*u - *v).abs());
                    }
                }
            }
        }
        worst
    }

    /// Largest element magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Total bytes of the payload.
    pub fn bytes(&self) -> usize {
        self.data.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    fn filled_g(layout: GLayout) -> GTensor {
        let mut t = GTensor::zeros(2, 3, 4, 2, layout);
        for k in 0..2 {
            for e in 0..3 {
                for a in 0..4 {
                    for (x, v) in t.block_mut(k, e, a).iter_mut().enumerate() {
                        *v = c64((k * 100 + e * 10 + a) as f64, x as f64);
                    }
                }
            }
        }
        t
    }

    #[test]
    fn g_layout_round_trip() {
        let t = filled_g(GLayout::PairMajor);
        let u = t.to_layout(GLayout::AtomMajor);
        assert_eq!(u.layout, GLayout::AtomMajor);
        assert_eq!(t.max_deviation(&u), 0.0);
        let back = u.to_layout(GLayout::PairMajor);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn g_atom_major_energy_contiguous() {
        let t = filled_g(GLayout::AtomMajor);
        // Blocks (k, e, a) and (k, e+1, a) must be bsz() apart.
        let d = t.offset(1, 2, 3) - t.offset(1, 1, 3);
        assert_eq!(d, t.bsz());
    }

    #[test]
    fn g_pair_major_atom_contiguous() {
        let t = filled_g(GLayout::PairMajor);
        let d = t.offset(1, 2, 3) - t.offset(1, 2, 2);
        assert_eq!(d, t.bsz());
    }

    #[test]
    fn d_tensor_entries() {
        let mut t = DTensor::zeros(2, 2, 5, 3, DLayout::PointMajor);
        assert_eq!(t.nentries(), 8);
        t.block_mut(1, 0, t.diag_entry(2))[0] = c64(7.0, 0.0);
        assert_eq!(t.block(1, 0, 7)[0], c64(7.0, 0.0));
        let u = t.to_layout(DLayout::EntryMajor);
        assert_eq!(u.block(1, 0, 7)[0], c64(7.0, 0.0));
        assert_eq!(t.max_deviation(&u), 0.0);
    }

    #[test]
    fn d_entry_major_omega_contiguous() {
        let t = DTensor::zeros(3, 4, 5, 2, DLayout::EntryMajor);
        let d = t.offset(1, 2, 3) - t.offset(1, 1, 3);
        assert_eq!(d, D_BSZ);
    }

    #[test]
    fn byte_accounting() {
        let g = GTensor::zeros(2, 3, 4, 5, GLayout::PairMajor);
        assert_eq!(g.bytes(), 2 * 3 * 4 * 25 * 16);
        let d = DTensor::zeros(2, 3, 4, 5, DLayout::PointMajor);
        assert_eq!(d.bytes(), 2 * 3 * 9 * 9 * 16);
    }

    #[test]
    fn max_abs_works() {
        let mut g = GTensor::zeros(1, 1, 1, 2, GLayout::PairMajor);
        g.block_mut(0, 0, 0)[3] = c64(-3.0, 4.0);
        assert_eq!(g.max_abs(), 5.0);
    }
}
