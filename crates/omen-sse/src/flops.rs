//! The paper's analytic SSE flop model (§6.1.1).
//!
//! * OMEN: `64 · Na · Nb · N3D · Nkz · Nqz · NE · Nω · Norb³`
//! * DaCe: the algebraic-regrouping reduction divides by
//!   `2·Nqz·Nω / (Nqz·Nω + 1)` — "essentially half of the flops for
//!   practical sizes".
//!
//! These are *model* values (no windowing effects); the kernels also count
//! the flops they actually perform.

/// Parameter set of the flop model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SseFlopParams {
    /// Number of atoms.
    pub na: usize,
    /// Neighbors per atom.
    pub nb: usize,
    /// Crystal-vibration degrees of freedom (3).
    pub n3d: usize,
    /// Electron momentum points.
    pub nk: usize,
    /// Phonon momentum points.
    pub nq: usize,
    /// Energy points.
    pub ne: usize,
    /// Phonon frequency points.
    pub nw: usize,
    /// Orbitals per atom.
    pub norb: usize,
}

/// OMEN-schedule SSE flops per iteration.
pub fn sse_flops_omen(p: &SseFlopParams) -> f64 {
    64.0 * p.na as f64
        * p.nb as f64
        * p.n3d as f64
        * p.nk as f64
        * p.nq as f64
        * p.ne as f64
        * p.nw as f64
        * (p.norb as f64).powi(3)
}

/// DaCe-schedule SSE flops per iteration (after algebraic regrouping).
pub fn sse_flops_dace(p: &SseFlopParams) -> f64 {
    let qw = (p.nq * p.nw) as f64;
    sse_flops_omen(p) * (qw + 1.0) / (2.0 * qw)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's "Small" structure at a given Nkz.
    fn small(nk: usize) -> SseFlopParams {
        SseFlopParams {
            na: 4864,
            nb: 34,
            n3d: 3,
            nk,
            nq: nk,
            ne: 706,
            nw: 70,
            norb: 12,
        }
    }

    #[test]
    fn reproduces_table3_omen_row() {
        // Table 3, SSE (OMEN) row, in Pflop: 24.41, 67.80, 132.89, 219.67,
        // 328.15 for Nkz = 3, 5, 7, 9, 11.
        let expected = [24.41, 67.80, 132.89, 219.67, 328.15];
        for (i, &nk) in [3usize, 5, 7, 9, 11].iter().enumerate() {
            let pflop = sse_flops_omen(&small(nk)) / 1e15;
            let rel = (pflop - expected[i]).abs() / expected[i];
            assert!(
                rel < 0.01,
                "Nkz={nk}: model {pflop:.2} vs paper {} ({rel:.3} rel)",
                expected[i]
            );
        }
    }

    #[test]
    fn reproduces_table3_dace_row() {
        // Table 3, SSE (DaCe) row: 12.38, 34.19, 66.85, 110.36, 164.71.
        let expected = [12.38, 34.19, 66.85, 110.36, 164.71];
        for (i, &nk) in [3usize, 5, 7, 9, 11].iter().enumerate() {
            let pflop = sse_flops_dace(&small(nk)) / 1e15;
            let rel = (pflop - expected[i]).abs() / expected[i];
            assert!(
                rel < 0.02,
                "Nkz={nk}: model {pflop:.2} vs paper {} ({rel:.3} rel)",
                expected[i]
            );
        }
    }

    #[test]
    fn reduction_approaches_half() {
        let p = small(11);
        let ratio = sse_flops_dace(&p) / sse_flops_omen(&p);
        assert!(ratio > 0.5 && ratio < 0.51, "ratio {ratio}");
    }
}
