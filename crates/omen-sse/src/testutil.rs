//! Shared test fixtures for the SSE kernels (compiled only for tests and
//! benches via the `testutil` feature of the crate's dev profile).

use crate::problem::SseProblem;
use crate::tensors::{DLayout, DTensor, GLayout, GTensor};
use omen_device::{DeviceConfig, DeviceStructure};
use omen_linalg::c64;

/// The standard tiny device for kernel tests.
pub fn tiny_device() -> DeviceStructure {
    DeviceStructure::build(DeviceConfig::tiny())
}

/// A small but non-degenerate SSE problem on the tiny device.
pub fn tiny_problem(device: &DeviceStructure) -> SseProblem<'_> {
    SseProblem::new(device, 2, 6, 2, 2, 1.0, 1.0)
}

/// Deterministic pseudo-random value in roughly `[-1, 1]`.
fn rnd(seed: u64, tag: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tag.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 29;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Generates physically-shaped random inputs:
/// * `G^≷` atom-diagonal blocks made anti-Hermitian with magnitude ~1e-3
///   (like real lesser/greater GFs);
/// * `D^≷` pair/diagonal blocks with magnitude ~1e-5.
pub fn random_inputs(prob: &SseProblem, seed: u64) -> (GTensor, GTensor, DTensor, DTensor) {
    let norb = prob.norb();
    let na = prob.na();
    let mk_g = |shift: u64| {
        let mut g = GTensor::zeros(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
        for k in 0..prob.nk {
            for e in 0..prob.ne {
                for a in 0..na {
                    let blk = g.block_mut(k, e, a);
                    // Anti-Hermitian: iX with X Hermitian.
                    for r in 0..norb {
                        for c in 0..=r {
                            let tag = ((((k * 131 + e) * 137 + a) * norb + r) * norb + c) as u64;
                            let re = rnd(seed + shift, tag) * 1e-3;
                            let im = rnd(seed + shift, tag ^ 0xABCD) * 1e-3;
                            if r == c {
                                blk[c * norb + r] = c64(0.0, re);
                            } else {
                                blk[c * norb + r] = c64(-im, re);
                                blk[r * norb + c] = c64(im, re);
                            }
                        }
                    }
                }
            }
        }
        g
    };
    let gl = mk_g(0);
    let gg = mk_g(1_000_000);

    let mk_d = |shift: u64| {
        let mut d = DTensor::zeros(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
        for q in 0..prob.nq {
            for w in 0..prob.nw {
                for en in 0..d.nentries() {
                    let blk = d.block_mut(q, w, en);
                    for (x, v) in blk.iter_mut().enumerate() {
                        let tag = (((q * 31 + w) * 37 + en) * 9 + x) as u64;
                        *v = c64(
                            rnd(seed + shift + 7, tag) * 1e-5,
                            rnd(seed + shift + 13, tag ^ 0x5555) * 1e-5,
                        );
                    }
                }
            }
        }
        d
    };
    let dl = mk_d(2_000_000);
    let dg = mk_d(3_000_000);
    (gl, gg, dl, dg)
}
