//! The DaCe-transformed SSE kernel — Fig. 6 of the paper.
//!
//! Four transformations are applied to the reference dataflow:
//!
//! 1. **Map fission** (❶): the products `∇H·G^≷` and `Σ_j Dc^{ij}·∇H^j`
//!    are hoisted into transient arrays (`hg`, `hd`), lowering the
//!    multiplication count — each `∇H·G` block is reused by all
//!    `Nqz · Nω` consumers instead of being recomputed, the
//!    `2NqzNω/(NqzNω+1)` flop reduction of §6.1.1.
//! 2. **Data layout** (❷): `G^≷`/`Σ^≷` are held `AtomMajor` (energy
//!    innermost) so consecutive batch items sit at constant stride.
//! 3. **Strided-batched multiplication** (❸): the per-energy small GEMMs
//!    become one `sbsmm` call per `(pair, i, kz, qz, ω)` tuple with
//!    `A`-stride `Norb²`, `B`-stride `0`, `C`-stride `Norb²`.
//! 4. **Map fusion** (❹): the stages share transients and loop structure.
//!
//! The kernel produces values elementwise-identical (up to floating-point
//! reassociation) to [`crate::reference::sse_reference`].

use crate::problem::SseProblem;
use crate::reference::SseOutput;
use crate::tensors::{DLayout, DTensor, GLayout, GTensor, D_BSZ};
use omen_linalg::{
    give_tls_packed_b, sbsmm, sbsmm_pb, small_gemm, take_tls_packed_b, use_packed_kernel,
    BatchDims, Strides, C64,
};
use rayon::prelude::*;

/// Below this many complex elements in a stage's output, the per-call
/// heap cost of parallel dispatch (job buffers, scoped threads) outweighs
/// the speedup; the serial loop is both faster and allocation-free, which
/// keeps warm Born iterations on test-sized devices off the heap
/// entirely (pinned by `tests/integration_alloc.rs`).
const PAR_MIN_ELEMS: usize = 1 << 16;

/// Runs `f` over `chunk`-sized pieces of `buf` — in parallel when the
/// buffer is large enough to amortize dispatch, serially otherwise.
fn for_each_chunk<F>(buf: &mut [C64], chunk: usize, f: F)
where
    F: Fn(usize, &mut [C64]) + Sync + Send,
{
    if buf.len() >= PAR_MIN_ELEMS {
        buf.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, c)| f(i, c));
    } else {
        buf.chunks_mut(chunk).enumerate().for_each(|(i, c)| f(i, c));
    }
}

/// The transient arrays produced by map fission (step ❶), kept public so
/// the mixed-precision kernel can reuse stage A/B outputs.
pub struct Transients {
    /// `∇H·G^<` blocks: layout `[pair][i][kz][E][Norb²]`.
    pub hg_l: Vec<C64>,
    /// `∇H·G^>` blocks.
    pub hg_g: Vec<C64>,
    /// `Σ_j Dc^<_{ij}·∇H^j_ba` blocks: layout `[pair][i][qz][ω][Norb²]`.
    pub hd_l: Vec<C64>,
    /// Greater-component `∇H·D` blocks.
    pub hd_g: Vec<C64>,
    /// Flops spent building the transients (stages A and B).
    pub flops: u64,
    nk: usize,
    ne: usize,
    nq: usize,
    nw: usize,
    bsz: usize,
}

impl Transients {
    /// Empty transients, the reusable slot for [`build_transients_into`].
    /// Performs no allocation.
    pub fn empty() -> Self {
        Transients {
            hg_l: Vec::new(),
            hg_g: Vec::new(),
            hd_l: Vec::new(),
            hd_g: Vec::new(),
            flops: 0,
            nk: 0,
            ne: 0,
            nq: 0,
            nw: 0,
            bsz: 0,
        }
    }

    /// Offset of `hg[pair][i][k][e]`.
    #[inline]
    pub fn hg_offset(&self, pair: usize, i: usize, k: usize, e: usize) -> usize {
        (((pair * 3 + i) * self.nk + k) * self.ne + e) * self.bsz
    }

    /// Offset of `hd[pair][i][q][m]`.
    #[inline]
    pub fn hd_offset(&self, pair: usize, i: usize, q: usize, m: usize) -> usize {
        (((pair * 3 + i) * self.nq + q) * self.nw + m) * self.bsz
    }
}

impl Default for Transients {
    fn default() -> Self {
        Transients::empty()
    }
}

/// Stage A + B: builds the `∇H·G` and `∇H·D` transients.
///
/// `g_l`/`g_g` must be `AtomMajor` (the data-layout transformation);
/// `d_l`/`d_g` may be in either layout.
pub fn build_transients(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
) -> Transients {
    let mut tr = Transients::empty();
    build_transients_into(prob, g_l, g_g, d_l, d_g, &mut tr);
    tr
}

/// [`build_transients`] into reusable storage: the four transient tensors
/// keep their buffers across calls, so a warm `Transients` makes the
/// stage-A/B rebuild allocation-free.
pub fn build_transients_into(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    tr: &mut Transients,
) {
    assert_eq!(
        g_l.layout,
        GLayout::AtomMajor,
        "transformed kernel expects AtomMajor G"
    );
    assert_eq!(
        g_g.layout,
        GLayout::AtomMajor,
        "transformed kernel expects AtomMajor G"
    );
    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);
    let npairs = prob.npairs();
    let (nk, ne, nq, nw) = (prob.nk, prob.ne, prob.nq, prob.nw);
    let grads = &prob.device.gradients;
    let pairs = &prob.device.neighbors.pairs;

    // ---- stage A: hg[p][i][k][e] = ∇H^i_p · G_{to(p)}(k, e) ----
    let hg_len = npairs * 3 * nk * ne * bsz;
    tr.hg_l.clear();
    tr.hg_l.resize(hg_len, C64::ZERO);
    tr.hg_g.clear();
    tr.hg_g.resize(hg_len, C64::ZERO);
    let hg_l = &mut tr.hg_l;
    let hg_g = &mut tr.hg_g;
    let chunk = 3 * nk * ne * bsz;
    let stage_a = |hg: &mut [C64], g: &GTensor| {
        for_each_chunk(hg, chunk, |p, out| {
            let b = pairs[p].to;
            for i in 0..3 {
                let grad = grads.grads[p][i].as_slice();
                for k in 0..nk {
                    // One strided-batched GEMM over the contiguous energy
                    // axis: A = ∇H (stride 0), B = G blocks (stride bsz).
                    let g0 = g.offset(k, 0, b);
                    let o0 = ((i * nk) + k) * ne * bsz;
                    sbsmm(
                        dims,
                        ne,
                        C64::ONE,
                        grad,
                        &g.as_slice()[g0..g0 + ne * bsz],
                        C64::ZERO,
                        &mut out[o0..o0 + ne * bsz],
                        Strides {
                            a: 0,
                            b: bsz,
                            c: bsz,
                        },
                    );
                }
            }
        });
    };
    stage_a(hg_l, g_l);
    stage_a(hg_g, g_g);
    let flops_a = 2 * (npairs * 3 * nk * ne) as u64 * dims.flops();

    // ---- stage B: hd[p][i][q][m] = Σ_j Dc^{ij}(q,m,p) · ∇H^j_ba ----
    let hd_len = npairs * 3 * nq * nw * bsz;
    tr.hd_l.clear();
    tr.hd_l.resize(hd_len, C64::ZERO);
    tr.hd_g.clear();
    tr.hd_g.resize(hd_len, C64::ZERO);
    let hd_l = &mut tr.hd_l;
    let hd_g = &mut tr.hd_g;
    let chunk_b = 3 * nq * nw * bsz;
    let stage_b = |hd: &mut [C64], d: &DTensor| {
        for_each_chunk(hd, chunk_b, |p, out| {
            let a = pairs[p].from;
            let b = pairs[p].to;
            let rev = prob.rev_pair[p];
            let grad_ba = &grads.grads[rev];
            for q in 0..nq {
                for m in 0..nw {
                    let dc = crate::reference::d_combination(d, q, m, p, rev, a, b);
                    for i in 0..3 {
                        let o = ((i * nq + q) * nw + m) * bsz;
                        let dst = &mut out[o..o + bsz];
                        for j in 0..3 {
                            let w = dc[j * 3 + i];
                            let gj = grad_ba[j].as_slice();
                            for x in 0..bsz {
                                dst[x] = dst[x].mul_add(gj[x], w);
                            }
                        }
                    }
                }
            }
        });
    };
    stage_b(hd_l, d_l);
    stage_b(hd_g, d_g);
    let flops_b = 2 * (npairs * nq * nw * 3 * 3) as u64 * 8 * bsz as u64;

    tr.flops = flops_a + flops_b;
    tr.nk = nk;
    tr.ne = ne;
    tr.nq = nq;
    tr.nw = nw;
    tr.bsz = bsz;
}

/// Stage C + D: consumes the transients, producing `Σ^≷` (AtomMajor) and
/// `Π^≷` (PointMajor).
pub fn sse_transformed(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
) -> SseOutput {
    let mut tr = Transients::empty();
    let mut out = SseOutput::empty();
    sse_transformed_into(prob, g_l, g_g, d_l, d_g, &mut tr, &mut out);
    out
}

/// [`sse_transformed`] with reusable transient and output storage: a warm
/// `(tr, out)` pair re-runs stages A–D without reallocating any of the
/// large intermediate tensors.
pub fn sse_transformed_into(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    tr: &mut Transients,
    out: &mut SseOutput,
) {
    build_transients_into(prob, g_l, g_g, d_l, d_g, tr);
    consume_transients_into(prob, tr, out);
}

/// The Σ/Π assembly from prebuilt transients (shared with the
/// mixed-precision kernel for its stage D).
pub fn consume_transients(prob: &SseProblem, tr: &Transients) -> SseOutput {
    let mut out = SseOutput::empty();
    consume_transients_into(prob, tr, &mut out);
    out
}

/// [`consume_transients`] into reusable output storage.
pub fn consume_transients_into(prob: &SseProblem, tr: &Transients, out: &mut SseOutput) {
    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);
    let na = prob.na();
    let (nk, ne, nq, nw) = (prob.nk, prob.ne, prob.nq, prob.nw);
    out.sigma_l.reset(nk, ne, na, norb, GLayout::AtomMajor);
    out.sigma_g.reset(nk, ne, na, norb, GLayout::AtomMajor);
    let sigma_l = &mut out.sigma_l;
    let sigma_g = &mut out.sigma_g;

    // ---- stage C: Σ^≷[a][k][e] via strided-batched GEMMs ----
    let atom_chunk = nk * ne * bsz;
    let offsets = &prob.device.neighbors.offsets;

    let flops_c: u64 = {
        // Each atom owns a contiguous output chunk; atoms run in parallel
        // when the Σ tensors are large enough to amortize dispatch. When
        // the block shape amortizes packing, each ∇H·D block is packed
        // once per (pair, i, qz, ω) into split-complex micro-panels
        // (thread-local `PackedB`s, warm after the first atom) and swept by
        // the FMA micro-kernel across the whole kz loop and all four Σ^≷
        // updates; tiny blocks keep the scalar batched loop.
        let packed = use_packed_kernel(dims);
        let sl = sigma_l.as_mut_slice();
        let sg = sigma_g.as_mut_slice();
        let par = sl.len() >= PAR_MIN_ELEMS;
        let atom_body = |a: usize, out_l: &mut [C64], out_g: &mut [C64]| -> u64 {
            {
                let mut flops = 0u64;
                let strides = Strides {
                    a: bsz,
                    b: 0,
                    c: bsz,
                };
                let mut pb_l = take_tls_packed_b();
                let mut pb_g = take_tls_packed_b();
                for p in offsets[a]..offsets[a + 1] {
                    for i in 0..3 {
                        for q in 0..nq {
                            for m in 0..nw {
                                let steps = prob.omega_steps(m);
                                if steps >= ne {
                                    continue;
                                }
                                let batch = ne - steps;
                                let hd_l_blk = &tr.hd_l
                                    [tr.hd_offset(p, i, q, m)..tr.hd_offset(p, i, q, m) + bsz];
                                let hd_g_blk = &tr.hd_g
                                    [tr.hd_offset(p, i, q, m)..tr.hd_offset(p, i, q, m) + bsz];
                                if packed {
                                    pb_l.pack(norb, norb, hd_l_blk);
                                    pb_g.pack(norb, norb, hd_g_blk);
                                }
                                for k in 0..nk {
                                    let kk = prob.k_minus_q(k, q);
                                    let out_base = k * ne * bsz;
                                    // Emission: Σ(e) += hg(e−steps) · hd,
                                    // batched over e ∈ [steps, ne);
                                    // absorption: Σ(e) += hg(e+steps) · hd',
                                    // batched over e ∈ [0, ne−steps).
                                    let a0 = tr.hg_offset(p, i, kk, 0);
                                    let c0 = out_base + steps * bsz;
                                    let a1 = tr.hg_offset(p, i, kk, steps);
                                    let c1 = out_base;
                                    if packed {
                                        let mul = |hg: &[C64],
                                                       ax: usize,
                                                       pb: &omen_linalg::PackedB,
                                                       out: &mut [C64],
                                                       cx: usize| {
                                            sbsmm_pb(
                                                dims,
                                                batch,
                                                C64::ONE,
                                                &hg[ax..ax + batch * bsz],
                                                bsz,
                                                pb,
                                                C64::ONE,
                                                &mut out[cx..cx + batch * bsz],
                                                bsz,
                                            );
                                        };
                                        mul(&tr.hg_l, a0, &pb_l, out_l, c0);
                                        mul(&tr.hg_g, a0, &pb_g, out_g, c0);
                                        mul(&tr.hg_l, a1, &pb_g, out_l, c1);
                                        mul(&tr.hg_g, a1, &pb_l, out_g, c1);
                                    } else {
                                        let mul = |hg: &[C64],
                                                       ax: usize,
                                                       hd: &[C64],
                                                       out: &mut [C64],
                                                       cx: usize| {
                                            sbsmm(
                                                dims,
                                                batch,
                                                C64::ONE,
                                                &hg[ax..ax + batch * bsz],
                                                hd,
                                                C64::ONE,
                                                &mut out[cx..cx + batch * bsz],
                                                strides,
                                            );
                                        };
                                        mul(&tr.hg_l, a0, hd_l_blk, out_l, c0);
                                        mul(&tr.hg_g, a0, hd_g_blk, out_g, c0);
                                        mul(&tr.hg_l, a1, hd_g_blk, out_l, c1);
                                        mul(&tr.hg_g, a1, hd_l_blk, out_g, c1);
                                    }
                                    flops += 4 * batch as u64 * dims.flops();
                                }
                            }
                        }
                    }
                }
                give_tls_packed_b(pb_l);
                give_tls_packed_b(pb_g);
                flops
            }
        };
        if par {
            sl.par_chunks_mut(atom_chunk)
                .zip(sg.par_chunks_mut(atom_chunk))
                .enumerate()
                .map(|(a, (out_l, out_g))| atom_body(a, out_l, out_g))
                .sum()
        } else {
            sl.chunks_mut(atom_chunk)
                .zip(sg.chunks_mut(atom_chunk))
                .enumerate()
                .map(|(a, (out_l, out_g))| atom_body(a, out_l, out_g))
                .sum()
        }
    };
    if prob.scale_sigma != 1.0 {
        for v in sigma_l.as_mut_slice() {
            *v = v.scale(prob.scale_sigma);
        }
        for v in sigma_g.as_mut_slice() {
            *v = v.scale(prob.scale_sigma);
        }
    }

    // ---- stage D: Π^≷ from transient traces ----
    let npairs = prob.npairs();
    out.pi_l.reset(nq, nw, npairs, na, DLayout::PointMajor);
    out.pi_g.reset(nq, nw, npairs, na, DLayout::PointMajor);
    let pi_l = &mut out.pi_l;
    let pi_g = &mut out.pi_g;
    let mut flops_d = 0u64;
    let pairs = &prob.device.neighbors.pairs;
    // `p` indexes `pairs` and `rev_pair` in lockstep; an iterator zip
    // would obscure the pair/reverse-pair relationship.
    #[allow(clippy::needless_range_loop)]
    for p in 0..npairs {
        let a = pairs[p].from;
        let rev = prob.rev_pair[p];
        for q in 0..nq {
            for m in 0..nw {
                let steps = prob.omega_steps(m);
                if steps >= ne {
                    continue;
                }
                let mut c_l = [C64::ZERO; D_BSZ];
                let mut c_g = [C64::ZERO; D_BSZ];
                for k in 0..nk {
                    let kq = prob.k_plus_q(k, q);
                    for e in 0..ne - steps {
                        for i in 0..3 {
                            let x_l = &tr.hg_l[tr.hg_offset(rev, i, kq, e + steps)..];
                            let x_g = &tr.hg_g[tr.hg_offset(rev, i, kq, e + steps)..];
                            for j in 0..3 {
                                let y_g = &tr.hg_g[tr.hg_offset(p, j, k, e)..];
                                let y_l = &tr.hg_l[tr.hg_offset(p, j, k, e)..];
                                c_l[j * 3 + i] +=
                                    crate::reference::trace_product(&x_l[..bsz], &y_g[..bsz], norb);
                                c_g[j * 3 + i] +=
                                    crate::reference::trace_product(&x_g[..bsz], &y_l[..bsz], norb);
                                flops_d += 2 * 8 * bsz as u64;
                            }
                        }
                    }
                }
                let pe = pi_l.pair_entry(p);
                let de = pi_l.diag_entry(a);
                for x in 0..D_BSZ {
                    pi_l.block_mut(q, m, pe)[x] += c_l[x].scale(prob.scale_pi);
                    pi_l.block_mut(q, m, de)[x] += c_l[x].scale(prob.scale_pi);
                    pi_g.block_mut(q, m, pe)[x] += c_g[x].scale(prob.scale_pi);
                    pi_g.block_mut(q, m, de)[x] += c_g[x].scale(prob.scale_pi);
                }
            }
        }
    }

    out.flops = tr.flops + flops_c + flops_d;
}

/// Sequential single-block helper mirroring the reference arithmetic; used
/// in unit tests of the transient construction.
pub fn check_transient_block(
    prob: &SseProblem,
    g: &GTensor,
    pair: usize,
    i: usize,
    k: usize,
    e: usize,
) -> Vec<C64> {
    let norb = prob.norb();
    let dims = BatchDims::square(norb);
    let b = prob.device.neighbors.pairs[pair].to;
    let mut out = vec![C64::ZERO; norb * norb];
    small_gemm(
        dims,
        C64::ONE,
        prob.device.gradients.grads[pair][i].as_slice(),
        g.block(k, e, b),
        C64::ZERO,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sse_reference;
    use crate::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn transformed_matches_reference() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 42);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let gl_am = gl.to_layout(GLayout::AtomMajor);
        let gg_am = gg.to_layout(GLayout::AtomMajor);
        let transformed = sse_transformed(&prob, &gl_am, &gg_am, &dl, &dg);

        let scale = reference.sigma_l.max_abs().max(1e-300);
        let dev_sl = transformed.sigma_l.max_deviation(&reference.sigma_l) / scale;
        assert!(dev_sl < 1e-12, "Σ< relative deviation {dev_sl}");
        let dev_sg = transformed.sigma_g.max_deviation(&reference.sigma_g)
            / reference.sigma_g.max_abs().max(1e-300);
        assert!(dev_sg < 1e-12, "Σ> relative deviation {dev_sg}");
        let dev_pl =
            transformed.pi_l.max_deviation(&reference.pi_l) / reference.pi_l.max_abs().max(1e-300);
        assert!(dev_pl < 1e-12, "Π< relative deviation {dev_pl}");
        let dev_pg =
            transformed.pi_g.max_deviation(&reference.pi_g) / reference.pi_g.max_abs().max(1e-300);
        assert!(dev_pg < 1e-12, "Π> relative deviation {dev_pg}");
    }

    #[test]
    fn flop_reduction_matches_model() {
        // The GEMM-dominated part shrinks by ≈ 2NqNω/(NqNω+1) (§6.1.1).
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 1);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let gl_am = gl.to_layout(GLayout::AtomMajor);
        let gg_am = gg.to_layout(GLayout::AtomMajor);
        let transformed = sse_transformed(&prob, &gl_am, &gg_am, &dl, &dg);
        assert!(
            transformed.flops < reference.flops,
            "transformed must do fewer flops: {} vs {}",
            transformed.flops,
            reference.flops
        );
        // Windowing and the Π stage blur the exact ratio; require at least
        // a 25% reduction for this tiny configuration.
        let ratio = transformed.flops as f64 / reference.flops as f64;
        assert!(ratio < 0.75, "flop ratio {ratio}");
    }

    #[test]
    fn transient_blocks_match_direct_product() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, _, _) = random_inputs(&prob, 9);
        let gl_am = gl.to_layout(GLayout::AtomMajor);
        let gg_am = gg.to_layout(GLayout::AtomMajor);
        let (_, _, dl, dg) = random_inputs(&prob, 9);
        let tr = build_transients(&prob, &gl_am, &gg_am, &dl, &dg);
        let bsz = prob.norb() * prob.norb();
        for &(p, i, k, e) in &[(0usize, 0usize, 0usize, 0usize), (3, 2, 1, 4), (7, 1, 1, 2)] {
            let want = check_transient_block(&prob, &gl_am, p, i, k, e);
            let got = &tr.hg_l[tr.hg_offset(p, i, k, e)..tr.hg_offset(p, i, k, e) + bsz];
            let dev: f64 = want
                .iter()
                .zip(got)
                .map(|(w, g)| (*w - *g).abs())
                .fold(0.0, f64::max);
            assert!(dev < 1e-13, "transient ({p},{i},{k},{e}) deviates by {dev}");
        }
    }

    #[test]
    fn layout_requirement_enforced() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 2);
        // PairMajor input must panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sse_transformed(&prob, &gl, &gg, &dl, &dg)
        }));
        assert!(result.is_err(), "PairMajor input must be rejected");
    }
}
