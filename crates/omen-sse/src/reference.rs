//! The OMEN-style reference SSE kernel — Eqs. (2)–(3) evaluated in the
//! physics-natural loop order, with one pair of small GEMMs per
//! `(kz, E, qz, ω, pair, direction)` tuple and no transient reuse.
//!
//! This is the baseline whose flop count the paper models as
//! `64·Na·Nb·N3D·Nkz·Nqz·NE·Nω·Norb³` (§6.1.1). The transformed kernel in
//! [`crate::transformed`] computes the *same values* with ~half the flops
//! and strided-batched structure; the test suite asserts elementwise
//! agreement between the two.

use crate::problem::SseProblem;
use crate::tensors::{DLayout, DTensor, GLayout, GTensor, D_BSZ};
use omen_linalg::{small_gemm, BatchDims, Workspace, C64};

/// Output of one SSE evaluation.
#[derive(Clone)]
pub struct SseOutput {
    /// Electron lesser self-energy `Σ^<` (diagonal atom blocks).
    pub sigma_l: GTensor,
    /// Electron greater self-energy `Σ^>`.
    pub sigma_g: GTensor,
    /// Phonon lesser self-energy `Π^<` (pair + diagonal entries).
    pub pi_l: DTensor,
    /// Phonon greater self-energy `Π^>`.
    pub pi_g: DTensor,
    /// Real flops performed.
    pub flops: u64,
}

impl SseOutput {
    /// A zero-size output, the reusable slot for the `_into` kernel
    /// variants. Performs no allocation.
    pub fn empty() -> Self {
        SseOutput {
            sigma_l: GTensor::zeros(0, 0, 0, 0, GLayout::PairMajor),
            sigma_g: GTensor::zeros(0, 0, 0, 0, GLayout::PairMajor),
            pi_l: DTensor::zeros(0, 0, 0, 0, DLayout::PointMajor),
            pi_g: DTensor::zeros(0, 0, 0, 0, DLayout::PointMajor),
            flops: 0,
        }
    }
}

impl Default for SseOutput {
    fn default() -> Self {
        SseOutput::empty()
    }
}

/// The 3×3 phonon-block combination of Eq. (2):
/// `Dc^{ij} = D^{ij}_ba − D^{ij}_bb − D^{ij}_aa + D^{ij}_ab`.
#[inline]
pub fn d_combination(
    d: &DTensor,
    q: usize,
    w: usize,
    pair: usize,
    rev: usize,
    a: usize,
    b: usize,
) -> [C64; D_BSZ] {
    d_combination_from(d, q, w, pair, rev, a, b, d.npairs)
}

/// Generic variant of [`d_combination`] over any [`crate::point_kernels::DBlocks`] store (used by
/// the distributed plans, whose `D` blocks live in per-rank hash maps).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn d_combination_from(
    d: &impl crate::point_kernels::DBlocks,
    q: usize,
    w: usize,
    pair: usize,
    rev: usize,
    a: usize,
    b: usize,
    npairs: usize,
) -> [C64; D_BSZ] {
    let d_ba = d.dblock(q, w, rev);
    let d_bb = d.dblock(q, w, npairs + b);
    let d_aa = d.dblock(q, w, npairs + a);
    let d_ab = d.dblock(q, w, pair);
    let mut out = [C64::ZERO; D_BSZ];
    for x in 0..D_BSZ {
        out[x] = d_ba[x] - d_bb[x] - d_aa[x] + d_ab[x];
    }
    out
}

/// Evaluates `Σ^≷` and `Π^≷` in the OMEN schedule.
///
/// Inputs:
/// * `g_l`, `g_g` — electron `G^≷` diagonal atom blocks, `PairMajor`;
/// * `d_l`, `d_g` — phonon `D^≷` pair/diagonal blocks, `PointMajor`.
pub fn sse_reference(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
) -> SseOutput {
    let mut ws = Workspace::new();
    let mut out = SseOutput::empty();
    sse_reference_into(prob, g_l, g_g, d_l, d_g, &mut ws, &mut out);
    out
}

/// [`sse_reference`] into a reusable output with workspace-held scratch:
/// a warm `(ws, out)` pair makes the evaluation **allocation-free**
/// (asserted by the `integration_alloc` regression test).
pub fn sse_reference_into(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    ws: &mut Workspace,
    out: &mut SseOutput,
) {
    assert_eq!(
        g_l.layout,
        GLayout::PairMajor,
        "reference expects PairMajor G"
    );
    assert_eq!(
        d_l.layout,
        DLayout::PointMajor,
        "reference expects PointMajor D"
    );
    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);
    let na = prob.na();
    out.sigma_l
        .reset(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
    out.sigma_g
        .reset(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
    out.pi_l
        .reset(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
    out.pi_g
        .reset(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
    let sigma_l = &mut out.sigma_l;
    let sigma_g = &mut out.sigma_g;
    let pi_l = &mut out.pi_l;
    let pi_g = &mut out.pi_g;
    let mut flops: u64 = 0;

    let grads = &prob.device.gradients;
    let mut t1 = ws.take_buf(bsz);
    let mut t2 = ws.take_buf(bsz);
    let mut cmat = ws.take_buf(bsz);
    let mut c_l = ws.take_buf(bsz);
    let mut c_g = ws.take_buf(bsz);

    // ---------------- Σ^≷ ----------------
    for a in 0..na {
        for (pair, b) in prob.pairs_of(a) {
            let rev = prob.rev_pair[pair];
            let grad_ab = &grads.grads[pair]; // ∇H_ab
            let grad_ba = &grads.grads[rev]; // ∇H_ba
            for q in 0..prob.nq {
                for m in 0..prob.nw {
                    let dc_l = d_combination(d_l, q, m, pair, rev, a, b);
                    let dc_g = d_combination(d_g, q, m, pair, rev, a, b);
                    let steps = prob.omega_steps(m);
                    for i in 0..3 {
                        // C^≷_i = Σ_j Dc^≷[i][j] · ∇H^j_ba (3 scalar-matrix MACs).
                        c_l.fill(C64::ZERO);
                        c_g.fill(C64::ZERO);
                        for j in 0..3 {
                            let wl = dc_l[j * 3 + i];
                            let wg = dc_g[j * 3 + i];
                            let gj = grad_ba[j].as_slice();
                            for x in 0..bsz {
                                c_l[x] = c_l[x].mul_add(gj[x], wl);
                                c_g[x] = c_g[x].mul_add(gj[x], wg);
                            }
                        }
                        flops += 2 * 3 * 8 * bsz as u64;
                        let gi = grad_ab[i].as_slice();

                        for k in 0..prob.nk {
                            let kk = prob.k_minus_q(k, q);
                            for e in 0..prob.ne {
                                // Emission: G^≷(kz−qz, E−ω) pairs with the
                                // same-component Dc.
                                if e >= steps {
                                    let gl_blk = g_l.block(kk, e - steps, b);
                                    small_gemm(dims, C64::ONE, gi, gl_blk, C64::ZERO, &mut t1);
                                    small_gemm(dims, C64::ONE, &t1, &c_l, C64::ZERO, &mut t2);
                                    acc(sigma_l.block_mut(k, e, a), &t2);
                                    let gg_blk = g_g.block(kk, e - steps, b);
                                    small_gemm(dims, C64::ONE, gi, gg_blk, C64::ZERO, &mut t1);
                                    small_gemm(dims, C64::ONE, &t1, &c_g, C64::ZERO, &mut t2);
                                    acc(sigma_g.block_mut(k, e, a), &t2);
                                    flops += 4 * dims.flops();
                                }
                                // Absorption: G^≷(kz−qz, E+ω) pairs with the
                                // opposite-component Dc.
                                if e + steps < prob.ne {
                                    let gl_blk = g_l.block(kk, e + steps, b);
                                    small_gemm(dims, C64::ONE, gi, gl_blk, C64::ZERO, &mut t1);
                                    small_gemm(dims, C64::ONE, &t1, &c_g, C64::ZERO, &mut t2);
                                    acc(sigma_l.block_mut(k, e, a), &t2);
                                    let gg_blk = g_g.block(kk, e + steps, b);
                                    small_gemm(dims, C64::ONE, gi, gg_blk, C64::ZERO, &mut t1);
                                    small_gemm(dims, C64::ONE, &t1, &c_l, C64::ZERO, &mut t2);
                                    acc(sigma_g.block_mut(k, e, a), &t2);
                                    flops += 4 * dims.flops();
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    scale_g(sigma_l, prob.scale_sigma);
    scale_g(sigma_g, prob.scale_sigma);

    // ---------------- Π^≷ ----------------
    // For each directed pair p = (a → b):
    //   C_p^{ij}(q,ω) = Σ_{k,E} tr{ ∇H^i_ba·G^≷_aa(k+q, E+ω) ·
    //                               ∇H^j_ab·G^≶_bb(k, E) }
    // contributes to the pair entry Π_ab and the diagonal entry Π_aa.
    for a in 0..na {
        for (pair, b) in prob.pairs_of(a) {
            let rev = prob.rev_pair[pair];
            let grad_ab = &grads.grads[pair];
            let grad_ba = &grads.grads[rev];
            for q in 0..prob.nq {
                for m in 0..prob.nw {
                    let steps = prob.omega_steps(m);
                    let mut cp_l = [C64::ZERO; D_BSZ];
                    let mut cp_g = [C64::ZERO; D_BSZ];
                    for k in 0..prob.nk {
                        let kq = prob.k_plus_q(k, q);
                        for e in 0..prob.ne.saturating_sub(steps) {
                            for i in 0..3 {
                                // X^i = ∇H^i_ba · G_aa(k+q, E+ω)
                                for j in 0..3 {
                                    // Π^<: G^<_aa(E+ω)·G^>_bb(E);
                                    // Π^>: G^>_aa(E+ω)·G^<_bb(E).
                                    small_gemm(
                                        dims,
                                        C64::ONE,
                                        grad_ba[i].as_slice(),
                                        g_l.block(kq, e + steps, a),
                                        C64::ZERO,
                                        &mut t1,
                                    );
                                    small_gemm(
                                        dims,
                                        C64::ONE,
                                        grad_ab[j].as_slice(),
                                        g_g.block(k, e, b),
                                        C64::ZERO,
                                        &mut t2,
                                    );
                                    cp_l[j * 3 + i] += trace_product(&t1, &t2, norb);
                                    small_gemm(
                                        dims,
                                        C64::ONE,
                                        grad_ba[i].as_slice(),
                                        g_g.block(kq, e + steps, a),
                                        C64::ZERO,
                                        &mut t1,
                                    );
                                    small_gemm(
                                        dims,
                                        C64::ONE,
                                        grad_ab[j].as_slice(),
                                        g_l.block(k, e, b),
                                        C64::ZERO,
                                        &mut cmat,
                                    );
                                    cp_g[j * 3 + i] += trace_product(&t1, &cmat, norb);
                                    flops += 4 * dims.flops() + 2 * 8 * bsz as u64;
                                }
                            }
                        }
                    }
                    let pe = pi_l.pair_entry(pair);
                    let de = pi_l.diag_entry(a);
                    for x in 0..D_BSZ {
                        pi_l.block_mut(q, m, pe)[x] += cp_l[x];
                        pi_l.block_mut(q, m, de)[x] += cp_l[x];
                        pi_g.block_mut(q, m, pe)[x] += cp_g[x];
                        pi_g.block_mut(q, m, de)[x] += cp_g[x];
                    }
                }
            }
        }
    }
    scale_d(pi_l, prob.scale_pi);
    scale_d(pi_g, prob.scale_pi);
    for buf in [t1, t2, cmat, c_l, c_g] {
        ws.give_buf(buf);
    }

    out.flops = flops;
}

#[inline]
fn acc(dst: &mut [C64], src: &[C64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

/// `tr(X · Y)` for column-major `n × n` slices.
#[inline]
pub fn trace_product(x: &[C64], y: &[C64], n: usize) -> C64 {
    let mut acc = C64::ZERO;
    for r in 0..n {
        for s in 0..n {
            // X[r, s] · Y[s, r]
            acc = acc.mul_add(x[s * n + r], y[r * n + s]);
        }
    }
    acc
}

fn scale_g(t: &mut GTensor, s: f64) {
    if s != 1.0 {
        for v in t.as_mut_slice() {
            *v = v.scale(s);
        }
    }
}

fn scale_d(t: &mut DTensor, s: f64) {
    if s != 1.0 {
        for v in t.as_mut_slice() {
            *v = v.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_inputs, tiny_problem};

    #[test]
    fn output_shapes() {
        let dev = crate::testutil::tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 7);
        let out = sse_reference(&prob, &gl, &gg, &dl, &dg);
        assert_eq!(out.sigma_l.nk, prob.nk);
        assert_eq!(out.sigma_l.ne, prob.ne);
        assert_eq!(out.sigma_l.na, prob.na());
        assert_eq!(out.pi_l.npairs, prob.npairs());
        assert!(out.flops > 0);
    }

    #[test]
    fn zero_d_gives_zero_sigma() {
        let dev = crate::testutil::tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 3);
        let zero_dl = DTensor::zeros(
            prob.nq,
            prob.nw,
            prob.npairs(),
            prob.na(),
            DLayout::PointMajor,
        );
        let zero_dg = zero_dl.clone();
        let out = sse_reference(&prob, &gl, &gg, &zero_dl, &zero_dg);
        assert_eq!(out.sigma_l.max_abs(), 0.0);
        assert_eq!(out.sigma_g.max_abs(), 0.0);
        // Π does not involve D: still nonzero.
        let _ = (dl, dg);
        assert!(out.pi_l.max_abs() > 0.0);
    }

    #[test]
    fn zero_g_gives_zero_everything() {
        let dev = crate::testutil::tiny_device();
        let prob = tiny_problem(&dev);
        let (_, _, dl, dg) = random_inputs(&prob, 3);
        let zg = GTensor::zeros(prob.nk, prob.ne, prob.na(), prob.norb(), GLayout::PairMajor);
        let out = sse_reference(&prob, &zg, &zg, &dl, &dg);
        assert_eq!(out.sigma_l.max_abs(), 0.0);
        assert_eq!(out.pi_l.max_abs(), 0.0);
        assert_eq!(out.pi_g.max_abs(), 0.0);
    }

    #[test]
    fn scale_factors_are_linear() {
        let dev = crate::testutil::tiny_device();
        let prob1 = tiny_problem(&dev);
        let mut prob2 = tiny_problem(&dev);
        prob2.scale_sigma = 2.0 * prob1.scale_sigma;
        prob2.scale_pi = 3.0 * prob1.scale_pi;
        let (gl, gg, dl, dg) = random_inputs(&prob1, 11);
        let o1 = sse_reference(&prob1, &gl, &gg, &dl, &dg);
        let o2 = sse_reference(&prob2, &gl, &gg, &dl, &dg);
        // Σ scales by 2, Π by 3.
        let mut max_s = 0.0f64;
        for (x, y) in o1.sigma_l.as_slice().iter().zip(o2.sigma_l.as_slice()) {
            max_s = max_s.max((*y - x.scale(2.0)).abs());
        }
        assert!(max_s < 1e-12);
        let mut max_p = 0.0f64;
        for (x, y) in o1.pi_g.as_slice().iter().zip(o2.pi_g.as_slice()) {
            max_p = max_p.max((*y - x.scale(3.0)).abs());
        }
        assert!(max_p < 1e-12);
    }

    #[test]
    fn energy_windowing_respected() {
        // Σ at the lowest energy can only receive absorption terms; at the
        // highest only emission. Check the edge blocks are still populated
        // (coupling exists) but differ from the bulk.
        let dev = crate::testutil::tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 5);
        let out = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let lo = out.sigma_l.block(0, 0, 0);
        let hi = out.sigma_l.block(0, prob.ne - 1, 0);
        assert!(lo.iter().any(|z| z.abs() > 0.0));
        assert!(hi.iter().any(|z| z.abs() > 0.0));
    }
}
