//! # omen-sse
//!
//! Scattering self-energy kernels — Eqs. (2)–(3) of the paper, in three
//! variants:
//!
//! * [`reference::sse_reference`] — the OMEN-style loop nest (baseline);
//! * [`transformed::sse_transformed`] — the DaCe-transformed kernel
//!   (map fission, data relayout, strided-batched GEMM, fusion; Fig. 6);
//! * [`mixed::sse_mixed`] — the Tensor-Core-emulating binary16 variant
//!   with per-tensor normalization (§5.4).
//!
//! All variants compute the same physics; the test suite asserts
//! elementwise agreement (exact for transformed, ~1e-3 relative for f16).

pub mod flops;
pub mod kernel;
pub mod mixed;
pub mod point_kernels;
pub mod problem;
pub mod reference;
pub mod tensors;
pub mod transformed;

#[doc(hidden)]
pub mod testutil;

pub use flops::{sse_flops_dace, sse_flops_omen, SseFlopParams};
pub use kernel::{KernelState, MixedKernel, ReferenceKernel, SseKernel, TransformedKernel};
pub use mixed::{sse_mixed, sse_mixed_into, MixedConfig, MixedScratch};
pub use point_kernels::{
    pi_round_update, pi_round_update_into, sigma_round_update, sigma_round_update_atoms,
    sigma_round_update_atoms_ws, sigma_round_update_ws, DBlocks, GBlocks,
};
pub use problem::{compute_rev_pair, SseProblem};
pub use reference::{
    d_combination, d_combination_from, sse_reference, sse_reference_into, trace_product, SseOutput,
};
pub use tensors::{DLayout, DTensor, GLayout, GTensor, D_BSZ};
pub use transformed::{
    build_transients, build_transients_into, consume_transients, consume_transients_into,
    sse_transformed, sse_transformed_into, Transients,
};
