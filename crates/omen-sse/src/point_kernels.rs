//! Per-point SSE update kernels over abstract block storage.
//!
//! The distributed communication plans in `omen-comm` execute SSE with
//! data scattered across simulated ranks; they cannot hand full
//! [`GTensor`]s to the kernels. These helpers compute the contribution of
//! a single `(qz, ω)` round to `Σ^≷(kz, E)` and `Π^≷(qz, ω)` through the
//! [`GBlocks`]/[`DBlocks`] traits, and the test suite proves that summing
//! the rounds reproduces [`crate::reference::sse_reference`] exactly.

use crate::problem::SseProblem;
use crate::reference::{d_combination_from, trace_product};
use crate::tensors::{DTensor, GTensor, D_BSZ};
use omen_linalg::{small_gemm, small_gemm_pb, use_packed_kernel, BatchDims, Workspace, C64};

/// Abstract access to `G^≷` atom-diagonal blocks.
pub trait GBlocks {
    /// The `Norb × Norb` block of atom `a` at point `(k, e)`.
    fn gblock(&self, k: usize, e: usize, a: usize) -> &[C64];
}

impl GBlocks for GTensor {
    fn gblock(&self, k: usize, e: usize, a: usize) -> &[C64] {
        self.block(k, e, a)
    }
}

/// Abstract access to `D^≷` pair/diagonal blocks at one `(q, ω)` point.
pub trait DBlocks {
    /// The `3 × 3` block of `entry` at point `(q, w)`; entries follow the
    /// [`DTensor`] convention (pairs first, then atom diagonals).
    fn dblock(&self, q: usize, w: usize, entry: usize) -> &[C64];
}

impl DBlocks for DTensor {
    fn dblock(&self, q: usize, w: usize, entry: usize) -> &[C64] {
        self.block(q, w, entry)
    }
}

/// Adds the `(q, m)` round's contribution to `Σ^≷(k, e)` for every atom.
///
/// `out_l`/`out_g` are the unscaled `Σ^≷` accumulators at `(k, e)`:
/// `na · Norb²` elements, atom-blocked. The arithmetic is identical to the
/// corresponding slice of [`crate::reference::sse_reference`].
#[allow(clippy::too_many_arguments)]
pub fn sigma_round_update(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    d_l: &impl DBlocks,
    d_g: &impl DBlocks,
    out_l: &mut [C64],
    out_g: &mut [C64],
) {
    let mut ws = Workspace::new();
    sigma_round_update_ws(prob, q, m, k, e, g_l, g_g, d_l, d_g, out_l, out_g, &mut ws);
}

/// [`sigma_round_update`] with workspace-held scratch (allocation-free
/// once `ws` is warm).
#[allow(clippy::too_many_arguments)]
pub fn sigma_round_update_ws(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    d_l: &impl DBlocks,
    d_g: &impl DBlocks,
    out_l: &mut [C64],
    out_g: &mut [C64],
    ws: &mut Workspace,
) {
    let na = prob.na();
    sigma_round_core(
        prob,
        q,
        m,
        k,
        e,
        g_l,
        g_g,
        d_l,
        d_g,
        (0..na).map(|a| (a, a)),
        na,
        out_l,
        out_g,
        ws,
    );
}

/// Subset variant of [`sigma_round_update`]: only the atoms in `atoms`
/// are updated; output block `x` of `out_l`/`out_g` corresponds to
/// `atoms[x]`. Used by the atom-tiled (DaCe) decomposition, where a rank
/// owns a contiguous atom range plus a neighbor halo.
#[allow(clippy::too_many_arguments)]
pub fn sigma_round_update_atoms(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    d_l: &impl DBlocks,
    d_g: &impl DBlocks,
    atoms: &[usize],
    out_l: &mut [C64],
    out_g: &mut [C64],
) {
    let mut ws = Workspace::new();
    sigma_round_update_atoms_ws(
        prob, q, m, k, e, g_l, g_g, d_l, d_g, atoms, out_l, out_g, &mut ws,
    );
}

/// [`sigma_round_update_atoms`] with workspace-held scratch.
#[allow(clippy::too_many_arguments)]
pub fn sigma_round_update_atoms_ws(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    d_l: &impl DBlocks,
    d_g: &impl DBlocks,
    atoms: &[usize],
    out_l: &mut [C64],
    out_g: &mut [C64],
    ws: &mut Workspace,
) {
    sigma_round_core(
        prob,
        q,
        m,
        k,
        e,
        g_l,
        g_g,
        d_l,
        d_g,
        atoms.iter().copied().enumerate(),
        atoms.len(),
        out_l,
        out_g,
        ws,
    );
}

/// Shared implementation over an `(output block, atom)` iteration. The
/// arithmetic is identical to the corresponding slice of
/// [`crate::reference::sse_reference`].
#[allow(clippy::too_many_arguments)]
fn sigma_round_core(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    d_l: &impl DBlocks,
    d_g: &impl DBlocks,
    atoms: impl Iterator<Item = (usize, usize)>,
    natoms: usize,
    out_l: &mut [C64],
    out_g: &mut [C64],
    ws: &mut Workspace,
) {
    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);
    assert_eq!(out_l.len(), natoms * bsz, "Σ< accumulator length");
    assert_eq!(out_g.len(), natoms * bsz, "Σ> accumulator length");
    let grads = &prob.device.gradients;
    let steps = prob.omega_steps(m);
    let kk = prob.k_minus_q(k, q);
    let emission = e >= steps;
    let absorption = e + steps < prob.ne;
    if !emission && !absorption {
        return;
    }
    let mut t1 = ws.take_buf(bsz);
    let mut t2 = ws.take_buf(bsz);
    let mut c_l = ws.take_buf(bsz);
    let mut c_g = ws.take_buf(bsz);
    // When the block shape amortizes packing, each G block is packed once
    // per pair into split-complex micro-panels (workspace-pooled, warm in
    // steady state) and reused across the three gradient directions.
    let packed = use_packed_kernel(dims);
    let mut pb_em_l = ws.take_packed_b();
    let mut pb_em_g = ws.take_packed_b();
    let mut pb_ab_l = ws.take_packed_b();
    let mut pb_ab_g = ws.take_packed_b();

    for (ax, a) in atoms {
        for (pair, b) in prob.pairs_of(a) {
            let rev = prob.rev_pair[pair];
            let dc_l = d_combination_from(d_l, q, m, pair, rev, a, b, prob.npairs());
            let dc_g = d_combination_from(d_g, q, m, pair, rev, a, b, prob.npairs());
            let grad_ab = &grads.grads[pair];
            let grad_ba = &grads.grads[rev];
            if packed {
                if emission {
                    pb_em_l.pack(norb, norb, g_l.gblock(kk, e - steps, b));
                    pb_em_g.pack(norb, norb, g_g.gblock(kk, e - steps, b));
                }
                if absorption {
                    pb_ab_l.pack(norb, norb, g_l.gblock(kk, e + steps, b));
                    pb_ab_g.pack(norb, norb, g_g.gblock(kk, e + steps, b));
                }
            }
            for i in 0..3 {
                c_l.fill(C64::ZERO);
                c_g.fill(C64::ZERO);
                for j in 0..3 {
                    let wl = dc_l[j * 3 + i];
                    let wg = dc_g[j * 3 + i];
                    let gj = grad_ba[j].as_slice();
                    for x in 0..bsz {
                        c_l[x] = c_l[x].mul_add(gj[x], wl);
                        c_g[x] = c_g[x].mul_add(gj[x], wg);
                    }
                }
                let gi = grad_ab[i].as_slice();
                let out_l_blk = &mut out_l[ax * bsz..(ax + 1) * bsz];
                if emission {
                    if packed {
                        small_gemm_pb(dims, C64::ONE, gi, &pb_em_l, C64::ZERO, &mut t1);
                    } else {
                        small_gemm(
                            dims,
                            C64::ONE,
                            gi,
                            g_l.gblock(kk, e - steps, b),
                            C64::ZERO,
                            &mut t1,
                        );
                    }
                    small_gemm(dims, C64::ONE, &t1, &c_l, C64::ZERO, &mut t2);
                    for (o, v) in out_l_blk.iter_mut().zip(&t2) {
                        *o += *v;
                    }
                }
                if absorption {
                    if packed {
                        small_gemm_pb(dims, C64::ONE, gi, &pb_ab_l, C64::ZERO, &mut t1);
                    } else {
                        small_gemm(
                            dims,
                            C64::ONE,
                            gi,
                            g_l.gblock(kk, e + steps, b),
                            C64::ZERO,
                            &mut t1,
                        );
                    }
                    small_gemm(dims, C64::ONE, &t1, &c_g, C64::ZERO, &mut t2);
                    for (o, v) in out_l_blk.iter_mut().zip(&t2) {
                        *o += *v;
                    }
                }
                let out_g_blk = &mut out_g[ax * bsz..(ax + 1) * bsz];
                if emission {
                    if packed {
                        small_gemm_pb(dims, C64::ONE, gi, &pb_em_g, C64::ZERO, &mut t1);
                    } else {
                        small_gemm(
                            dims,
                            C64::ONE,
                            gi,
                            g_g.gblock(kk, e - steps, b),
                            C64::ZERO,
                            &mut t1,
                        );
                    }
                    small_gemm(dims, C64::ONE, &t1, &c_g, C64::ZERO, &mut t2);
                    for (o, v) in out_g_blk.iter_mut().zip(&t2) {
                        *o += *v;
                    }
                }
                if absorption {
                    if packed {
                        small_gemm_pb(dims, C64::ONE, gi, &pb_ab_g, C64::ZERO, &mut t1);
                    } else {
                        small_gemm(
                            dims,
                            C64::ONE,
                            gi,
                            g_g.gblock(kk, e + steps, b),
                            C64::ZERO,
                            &mut t1,
                        );
                    }
                    small_gemm(dims, C64::ONE, &t1, &c_l, C64::ZERO, &mut t2);
                    for (o, v) in out_g_blk.iter_mut().zip(&t2) {
                        *o += *v;
                    }
                }
            }
        }
    }
    for buf in [t1, t2, c_l, c_g] {
        ws.give_buf(buf);
    }
    for pb in [pb_em_l, pb_em_g, pb_ab_l, pb_ab_g] {
        ws.give_packed_b(pb);
    }
}

/// The `(q, m)` round's `Π^≷` contribution from summation point `(k, e)`,
/// restricted to the directed pairs in `pair_subset` (pass all pairs for a
/// full evaluation). Returns `(pair, C^<_{3×3}, C^>_{3×3})` tuples; each
/// contributes to both the pair entry `Π_ab` and the diagonal entry
/// `Π_aa` of the pair's source atom.
#[allow(clippy::too_many_arguments)]
pub fn pi_round_update(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    pair_subset: &[usize],
) -> Vec<(usize, [C64; D_BSZ], [C64; D_BSZ])> {
    let mut ws = Workspace::new();
    let mut out = Vec::new();
    pi_round_update_into(prob, q, m, k, e, g_l, g_g, pair_subset, &mut ws, &mut out);
    out
}

/// [`pi_round_update`] into a reusable vector with workspace-held scratch
/// (allocation-free once `ws` and `out` are warm).
#[allow(clippy::too_many_arguments)]
pub fn pi_round_update_into(
    prob: &SseProblem,
    q: usize,
    m: usize,
    k: usize,
    e: usize,
    g_l: &impl GBlocks,
    g_g: &impl GBlocks,
    pair_subset: &[usize],
    ws: &mut Workspace,
    out: &mut Vec<(usize, [C64; D_BSZ], [C64; D_BSZ])>,
) {
    out.clear();
    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);
    let steps = prob.omega_steps(m);
    if e + steps >= prob.ne {
        return;
    }
    let kq = prob.k_plus_q(k, q);
    let grads = &prob.device.gradients;
    let pairs = &prob.device.neighbors.pairs;
    let mut t1 = ws.take_buf(bsz);
    let mut t2 = ws.take_buf(bsz);
    // Pack the four G blocks of each pair once and sweep them across the
    // 3×3 gradient-direction loop (see `sigma_round_core`).
    let packed = use_packed_kernel(dims);
    let mut pb_l_a = ws.take_packed_b();
    let mut pb_g_a = ws.take_packed_b();
    let mut pb_l_b = ws.take_packed_b();
    let mut pb_g_b = ws.take_packed_b();
    out.reserve(pair_subset.len());
    for &p in pair_subset {
        let a = pairs[p].from;
        let b = pairs[p].to;
        let rev = prob.rev_pair[p];
        let grad_ab = &grads.grads[p];
        let grad_ba = &grads.grads[rev];
        if packed {
            pb_l_a.pack(norb, norb, g_l.gblock(kq, e + steps, a));
            pb_g_a.pack(norb, norb, g_g.gblock(kq, e + steps, a));
            pb_g_b.pack(norb, norb, g_g.gblock(k, e, b));
            pb_l_b.pack(norb, norb, g_l.gblock(k, e, b));
        }
        let mut c_l = [C64::ZERO; D_BSZ];
        let mut c_g = [C64::ZERO; D_BSZ];
        for i in 0..3 {
            for j in 0..3 {
                if packed {
                    small_gemm_pb(
                        dims,
                        C64::ONE,
                        grad_ba[i].as_slice(),
                        &pb_l_a,
                        C64::ZERO,
                        &mut t1,
                    );
                    small_gemm_pb(
                        dims,
                        C64::ONE,
                        grad_ab[j].as_slice(),
                        &pb_g_b,
                        C64::ZERO,
                        &mut t2,
                    );
                } else {
                    small_gemm(
                        dims,
                        C64::ONE,
                        grad_ba[i].as_slice(),
                        g_l.gblock(kq, e + steps, a),
                        C64::ZERO,
                        &mut t1,
                    );
                    small_gemm(
                        dims,
                        C64::ONE,
                        grad_ab[j].as_slice(),
                        g_g.gblock(k, e, b),
                        C64::ZERO,
                        &mut t2,
                    );
                }
                c_l[j * 3 + i] += trace_product(&t1, &t2, norb);
                if packed {
                    small_gemm_pb(
                        dims,
                        C64::ONE,
                        grad_ba[i].as_slice(),
                        &pb_g_a,
                        C64::ZERO,
                        &mut t1,
                    );
                    small_gemm_pb(
                        dims,
                        C64::ONE,
                        grad_ab[j].as_slice(),
                        &pb_l_b,
                        C64::ZERO,
                        &mut t2,
                    );
                } else {
                    small_gemm(
                        dims,
                        C64::ONE,
                        grad_ba[i].as_slice(),
                        g_g.gblock(kq, e + steps, a),
                        C64::ZERO,
                        &mut t1,
                    );
                    small_gemm(
                        dims,
                        C64::ONE,
                        grad_ab[j].as_slice(),
                        g_l.gblock(k, e, b),
                        C64::ZERO,
                        &mut t2,
                    );
                }
                c_g[j * 3 + i] += trace_product(&t1, &t2, norb);
            }
        }
        out.push((p, c_l, c_g));
    }
    ws.give_buf(t1);
    ws.give_buf(t2);
    for pb in [pb_l_a, pb_g_a, pb_l_b, pb_g_b] {
        ws.give_packed_b(pb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sse_reference;
    use crate::tensors::{DLayout, GLayout};
    use crate::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn summed_rounds_match_reference() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 31);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);

        let norb = prob.norb();
        let bsz = norb * norb;
        let na = prob.na();
        let mut sigma_l = GTensor::zeros(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
        let mut sigma_g = GTensor::zeros(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
        let mut pi_l = DTensor::zeros(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
        let mut pi_g = DTensor::zeros(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
        let all_pairs: Vec<usize> = (0..prob.npairs()).collect();

        for q in 0..prob.nq {
            for m in 0..prob.nw {
                for k in 0..prob.nk {
                    for e in 0..prob.ne {
                        let mut acc_l = vec![C64::ZERO; na * bsz];
                        let mut acc_g = vec![C64::ZERO; na * bsz];
                        sigma_round_update(
                            &prob, q, m, k, e, &gl, &gg, &dl, &dg, &mut acc_l, &mut acc_g,
                        );
                        for a in 0..na {
                            for (x, v) in sigma_l.block_mut(k, e, a).iter_mut().enumerate() {
                                *v += acc_l[a * bsz + x];
                            }
                            for (x, v) in sigma_g.block_mut(k, e, a).iter_mut().enumerate() {
                                *v += acc_g[a * bsz + x];
                            }
                        }
                        for (p, c_l, c_g) in
                            pi_round_update(&prob, q, m, k, e, &gl, &gg, &all_pairs)
                        {
                            let a = dev.neighbors.pairs[p].from;
                            let pe = pi_l.pair_entry(p);
                            let de = pi_l.diag_entry(a);
                            for x in 0..D_BSZ {
                                pi_l.block_mut(q, m, pe)[x] += c_l[x];
                                pi_l.block_mut(q, m, de)[x] += c_l[x];
                                pi_g.block_mut(q, m, pe)[x] += c_g[x];
                                pi_g.block_mut(q, m, de)[x] += c_g[x];
                            }
                        }
                    }
                }
            }
        }
        // (scale factors are 1.0 in tiny_problem)
        let ds = sigma_l.max_deviation(&reference.sigma_l) / reference.sigma_l.max_abs();
        assert!(ds < 1e-12, "Σ< deviation {ds}");
        let dg_ = sigma_g.max_deviation(&reference.sigma_g) / reference.sigma_g.max_abs();
        assert!(dg_ < 1e-12, "Σ> deviation {dg_}");
        let dp = pi_l.max_deviation(&reference.pi_l) / reference.pi_l.max_abs();
        assert!(dp < 1e-12, "Π< deviation {dp}");
        let dpg = pi_g.max_deviation(&reference.pi_g) / reference.pi_g.max_abs();
        assert!(dpg < 1e-12, "Π> deviation {dpg}");
    }

    #[test]
    fn out_of_window_round_is_noop() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 8);
        let na = prob.na();
        let bsz = prob.norb() * prob.norb();
        // e = 0 with only absorption possible; m such that steps >= ne is
        // impossible here, so test the Π window instead: e + steps >= ne.
        let e = prob.ne - 1;
        let updates = pi_round_update(&prob, 0, 0, 0, e, &gl, &gg, &[0, 1]);
        assert!(updates.is_empty());
        // Σ at e=ne−1 has emission only; accumulator changes.
        let mut acc_l = vec![C64::ZERO; na * bsz];
        let mut acc_g = vec![C64::ZERO; na * bsz];
        sigma_round_update(
            &prob, 0, 0, 0, e, &gl, &gg, &dl, &dg, &mut acc_l, &mut acc_g,
        );
        assert!(acc_l.iter().any(|z| z.abs() > 0.0));
        let _ = (dl, dg);
    }
}
