//! Shared problem description for the SSE kernels: grids, couplings, and
//! the directed-pair topology extracted from the device.

use omen_device::DeviceStructure;
use std::borrow::Cow;

/// One SSE evaluation problem: the energy/momentum/frequency grids, the
/// physical prefactors, and the neighbor-pair topology.
///
/// Grid conventions (matching the paper's stencil, Fig. 5):
/// * electron momenta `kz` and phonon momenta `qz` discretize the same
///   Brillouin zone (`Nqz == Nkz` is asserted), wrapping periodically;
/// * phonon frequencies are commensurate with the energy grid:
///   `ℏω_m = (m + 1) · dE` for frequency index `m ∈ [0, Nω)`, so the
///   `E ± ℏω` stencil lands on grid points (radius `Nω`, as in Fig. 6);
/// * energies outside the grid window are dropped (standard windowing).
pub struct SseProblem<'a> {
    /// The device (neighbor pairs, `∇H` table, orbital count).
    pub device: &'a DeviceStructure,
    /// Electron momentum points (`Nkz`).
    pub nk: usize,
    /// Electron energy points (`NE`).
    pub ne: usize,
    /// Phonon momentum points (`Nqz`, equal to `nk`).
    pub nq: usize,
    /// Phonon frequency points (`Nω`).
    pub nw: usize,
    /// Prefactor applied to `Σ^≷` (coupling² × dω/2π bookkeeping).
    pub scale_sigma: f64,
    /// Prefactor applied to `Π^≷`.
    pub scale_pi: f64,
    /// Reverse-pair index: `rev_pair[p]` is the index of `(b → a, −m)` for
    /// pair `p = (a → b, m)`. Borrowed when the caller caches the table
    /// across problem constructions (the Born loop rebuilds the problem
    /// every iteration and must stay allocation-free).
    pub rev_pair: Cow<'a, [usize]>,
}

/// The reverse-pair table of `device`: entry `p` is the index of the
/// opposite directed pair. Depends only on the neighbor list, so callers
/// that rebuild [`SseProblem`]s for a fixed device can compute it once
/// and pass it to [`SseProblem::with_rev_pair`].
pub fn compute_rev_pair(device: &DeviceStructure) -> Vec<usize> {
    let pairs = &device.neighbors.pairs;
    pairs
        .iter()
        .map(|p| {
            pairs
                .iter()
                .position(|q| {
                    q.from == p.to
                        && q.to == p.from
                        && q.z_image == -p.z_image
                        && (q.delta[0] + p.delta[0]).abs() < 1e-12
                        && (q.delta[1] + p.delta[1]).abs() < 1e-12
                        && (q.delta[2] + p.delta[2]).abs() < 1e-12
                })
                .expect("neighbor list must be symmetric")
        })
        .collect()
}

impl<'a> SseProblem<'a> {
    /// Builds the problem, precomputing the reverse-pair table.
    pub fn new(
        device: &'a DeviceStructure,
        nk: usize,
        ne: usize,
        nq: usize,
        nw: usize,
        scale_sigma: f64,
        scale_pi: f64,
    ) -> Self {
        let rev_pair = compute_rev_pair(device);
        Self::build(
            device,
            nk,
            ne,
            nq,
            nw,
            scale_sigma,
            scale_pi,
            Cow::Owned(rev_pair),
        )
    }

    /// [`SseProblem::new`] with a precomputed reverse-pair table (from
    /// [`compute_rev_pair`] on the same device): no allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn with_rev_pair(
        device: &'a DeviceStructure,
        nk: usize,
        ne: usize,
        nq: usize,
        nw: usize,
        scale_sigma: f64,
        scale_pi: f64,
        rev_pair: &'a [usize],
    ) -> Self {
        Self::build(
            device,
            nk,
            ne,
            nq,
            nw,
            scale_sigma,
            scale_pi,
            Cow::Borrowed(rev_pair),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        device: &'a DeviceStructure,
        nk: usize,
        ne: usize,
        nq: usize,
        nw: usize,
        scale_sigma: f64,
        scale_pi: f64,
        rev_pair: Cow<'a, [usize]>,
    ) -> Self {
        assert_eq!(nq, nk, "qz and kz must discretize the same Brillouin zone");
        assert!(nw >= 1, "need at least one phonon frequency");
        assert!(ne > nw, "energy window must exceed the stencil radius");
        assert_eq!(
            rev_pair.len(),
            device.neighbors.num_pairs(),
            "reverse-pair table must cover every directed pair"
        );
        SseProblem {
            device,
            nk,
            ne,
            nq,
            nw,
            scale_sigma,
            scale_pi,
            rev_pair,
        }
    }

    /// Number of directed pairs.
    pub fn npairs(&self) -> usize {
        self.device.neighbors.num_pairs()
    }

    /// Number of atoms.
    pub fn na(&self) -> usize {
        self.device.num_atoms()
    }

    /// Orbitals per atom.
    pub fn norb(&self) -> usize {
        self.device.material.norb
    }

    /// Electron momentum after emitting phonon momentum `q`:
    /// `kz − qz` with periodic wrap.
    #[inline]
    pub fn k_minus_q(&self, k: usize, q: usize) -> usize {
        (k + self.nk - q) % self.nk
    }

    /// Electron momentum after absorbing phonon momentum `q`:
    /// `kz + qz` with periodic wrap.
    #[inline]
    pub fn k_plus_q(&self, k: usize, q: usize) -> usize {
        (k + q) % self.nk
    }

    /// The energy-grid offset of frequency index `m`: `ω_m = (m+1)` steps.
    #[inline]
    pub fn omega_steps(&self, m: usize) -> usize {
        m + 1
    }

    /// The directed pairs of atom `a` as `(pair_index, target_atom)`.
    pub fn pairs_of(&self, a: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = self.device.neighbors.offsets[a];
        let hi = self.device.neighbors.offsets[a + 1];
        (lo..hi).map(move |p| (p, self.device.neighbors.pairs[p].to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_device::{DeviceConfig, DeviceStructure};

    fn problem(dev: &DeviceStructure) -> SseProblem<'_> {
        SseProblem::new(dev, 3, 8, 3, 2, 1.0, 1.0)
    }

    #[test]
    fn reverse_pairs_are_involutive() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        for p in 0..prob.npairs() {
            let r = prob.rev_pair[p];
            assert_eq!(prob.rev_pair[r], p, "rev(rev(p)) == p");
            let pp = &dev.neighbors.pairs[p];
            let rr = &dev.neighbors.pairs[r];
            assert_eq!(pp.from, rr.to);
            assert_eq!(pp.to, rr.from);
        }
    }

    #[test]
    fn momentum_wrapping() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        assert_eq!(prob.k_minus_q(0, 1), 2);
        assert_eq!(prob.k_minus_q(2, 2), 0);
        assert_eq!(prob.k_plus_q(2, 2), 1);
        // Round trip: (k − q) + q == k.
        for k in 0..3 {
            for q in 0..3 {
                assert_eq!(prob.k_plus_q(prob.k_minus_q(k, q), q), k);
            }
        }
    }

    #[test]
    fn pairs_of_covers_all() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        let total: usize = (0..prob.na()).map(|a| prob.pairs_of(a).count()).sum();
        assert_eq!(total, prob.npairs());
        for a in 0..prob.na() {
            for (p, b) in prob.pairs_of(a) {
                assert_eq!(dev.neighbors.pairs[p].from, a);
                assert_eq!(dev.neighbors.pairs[p].to, b);
            }
        }
    }

    #[test]
    fn precomputed_rev_pair_matches_owned() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let table = compute_rev_pair(&dev);
        let owned = problem(&dev);
        let borrowed = SseProblem::with_rev_pair(&dev, 3, 8, 3, 2, 1.0, 1.0, &table);
        assert_eq!(&*owned.rev_pair, &*borrowed.rev_pair);
        assert!(matches!(borrowed.rev_pair, Cow::Borrowed(_)));
    }

    #[test]
    #[should_panic(expected = "cover every directed pair")]
    fn short_rev_pair_table_panics() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let _ = SseProblem::with_rev_pair(&dev, 3, 8, 3, 2, 1.0, 1.0, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "Brillouin zone")]
    fn mismatched_momentum_grids_panic() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let _ = SseProblem::new(&dev, 3, 8, 2, 2, 1.0, 1.0);
    }
}
