//! Shared problem description for the SSE kernels: grids, couplings, and
//! the directed-pair topology extracted from the device.

use omen_device::DeviceStructure;

/// One SSE evaluation problem: the energy/momentum/frequency grids, the
/// physical prefactors, and the neighbor-pair topology.
///
/// Grid conventions (matching the paper's stencil, Fig. 5):
/// * electron momenta `kz` and phonon momenta `qz` discretize the same
///   Brillouin zone (`Nqz == Nkz` is asserted), wrapping periodically;
/// * phonon frequencies are commensurate with the energy grid:
///   `ℏω_m = (m + 1) · dE` for frequency index `m ∈ [0, Nω)`, so the
///   `E ± ℏω` stencil lands on grid points (radius `Nω`, as in Fig. 6);
/// * energies outside the grid window are dropped (standard windowing).
pub struct SseProblem<'a> {
    /// The device (neighbor pairs, `∇H` table, orbital count).
    pub device: &'a DeviceStructure,
    /// Electron momentum points (`Nkz`).
    pub nk: usize,
    /// Electron energy points (`NE`).
    pub ne: usize,
    /// Phonon momentum points (`Nqz`, equal to `nk`).
    pub nq: usize,
    /// Phonon frequency points (`Nω`).
    pub nw: usize,
    /// Prefactor applied to `Σ^≷` (coupling² × dω/2π bookkeeping).
    pub scale_sigma: f64,
    /// Prefactor applied to `Π^≷`.
    pub scale_pi: f64,
    /// Reverse-pair index: `rev_pair[p]` is the index of `(b → a, −m)` for
    /// pair `p = (a → b, m)`.
    pub rev_pair: Vec<usize>,
}

impl<'a> SseProblem<'a> {
    /// Builds the problem, precomputing the reverse-pair table.
    pub fn new(
        device: &'a DeviceStructure,
        nk: usize,
        ne: usize,
        nq: usize,
        nw: usize,
        scale_sigma: f64,
        scale_pi: f64,
    ) -> Self {
        assert_eq!(nq, nk, "qz and kz must discretize the same Brillouin zone");
        assert!(nw >= 1, "need at least one phonon frequency");
        assert!(ne > nw, "energy window must exceed the stencil radius");
        let pairs = &device.neighbors.pairs;
        let rev_pair = pairs
            .iter()
            .map(|p| {
                pairs
                    .iter()
                    .position(|q| {
                        q.from == p.to
                            && q.to == p.from
                            && q.z_image == -p.z_image
                            && (q.delta[0] + p.delta[0]).abs() < 1e-12
                            && (q.delta[1] + p.delta[1]).abs() < 1e-12
                            && (q.delta[2] + p.delta[2]).abs() < 1e-12
                    })
                    .expect("neighbor list must be symmetric")
            })
            .collect();
        SseProblem {
            device,
            nk,
            ne,
            nq,
            nw,
            scale_sigma,
            scale_pi,
            rev_pair,
        }
    }

    /// Number of directed pairs.
    pub fn npairs(&self) -> usize {
        self.device.neighbors.num_pairs()
    }

    /// Number of atoms.
    pub fn na(&self) -> usize {
        self.device.num_atoms()
    }

    /// Orbitals per atom.
    pub fn norb(&self) -> usize {
        self.device.material.norb
    }

    /// Electron momentum after emitting phonon momentum `q`:
    /// `kz − qz` with periodic wrap.
    #[inline]
    pub fn k_minus_q(&self, k: usize, q: usize) -> usize {
        (k + self.nk - q) % self.nk
    }

    /// Electron momentum after absorbing phonon momentum `q`:
    /// `kz + qz` with periodic wrap.
    #[inline]
    pub fn k_plus_q(&self, k: usize, q: usize) -> usize {
        (k + q) % self.nk
    }

    /// The energy-grid offset of frequency index `m`: `ω_m = (m+1)` steps.
    #[inline]
    pub fn omega_steps(&self, m: usize) -> usize {
        m + 1
    }

    /// The directed pairs of atom `a` as `(pair_index, target_atom)`.
    pub fn pairs_of(&self, a: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = self.device.neighbors.offsets[a];
        let hi = self.device.neighbors.offsets[a + 1];
        (lo..hi).map(move |p| (p, self.device.neighbors.pairs[p].to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_device::{DeviceConfig, DeviceStructure};

    fn problem(dev: &DeviceStructure) -> SseProblem<'_> {
        SseProblem::new(dev, 3, 8, 3, 2, 1.0, 1.0)
    }

    #[test]
    fn reverse_pairs_are_involutive() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        for p in 0..prob.npairs() {
            let r = prob.rev_pair[p];
            assert_eq!(prob.rev_pair[r], p, "rev(rev(p)) == p");
            let pp = &dev.neighbors.pairs[p];
            let rr = &dev.neighbors.pairs[r];
            assert_eq!(pp.from, rr.to);
            assert_eq!(pp.to, rr.from);
        }
    }

    #[test]
    fn momentum_wrapping() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        assert_eq!(prob.k_minus_q(0, 1), 2);
        assert_eq!(prob.k_minus_q(2, 2), 0);
        assert_eq!(prob.k_plus_q(2, 2), 1);
        // Round trip: (k − q) + q == k.
        for k in 0..3 {
            for q in 0..3 {
                assert_eq!(prob.k_plus_q(prob.k_minus_q(k, q), q), k);
            }
        }
    }

    #[test]
    fn pairs_of_covers_all() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let prob = problem(&dev);
        let total: usize = (0..prob.na()).map(|a| prob.pairs_of(a).count()).sum();
        assert_eq!(total, prob.npairs());
        for a in 0..prob.na() {
            for (p, b) in prob.pairs_of(a) {
                assert_eq!(dev.neighbors.pairs[p].from, a);
                assert_eq!(dev.neighbors.pairs[p].to, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "Brillouin zone")]
    fn mismatched_momentum_grids_panic() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let _ = SseProblem::new(&dev, 3, 8, 2, 2, 1.0, 1.0);
    }
}
