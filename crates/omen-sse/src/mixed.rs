//! SSE-16: the mixed-precision SSE kernel of §5.4.
//!
//! The dominant stage-C multiplications of the transformed kernel run in
//! emulated Tensor-Core arithmetic: the transient tensors are converted to
//! split-complex binary16 with per-tensor normalization factors derived
//! from their magnitudes, out-of-range values are clamped, the `f16 × f16`
//! products accumulate in double precision, and the output is denormalized
//! by the inverse factors. Π^≷ stays in double precision (its cost is a
//! factor `Norb` smaller).
//!
//! The conversion is the **fused pack-and-convert** pass of
//! `omen_linalg::mixed`: each transient tensor is normalized, rounded to
//! binary16 and laid out as split-complex micro-panels in a single sweep
//! ([`omen_linalg::F16APanels`] / [`omen_linalg::F16BPanels`]), so the f16
//! batch and the micro-kernel pack buffers — previously two separate
//! materializations of the same data — are one array at half the bytes.
//! Stage C then runs the packed FMA micro-kernel with f64 accumulation
//! ([`omen_linalg::sbsmm_f16_packed`]).
//!
//! Disabling normalization reproduces the divergence of Fig. 7b: SSE
//! inputs span ~20 decades and the small magnitudes flush to zero in raw
//! binary16.

use crate::problem::SseProblem;
use crate::reference::SseOutput;
use crate::tensors::{DLayout, DTensor, GLayout, GTensor, D_BSZ};
use crate::transformed::{build_transients_into, Transients};
use omen_linalg::{sbsmm_f16_packed, BatchDims, F16APanels, F16BPanels, Normalization, C64};
use rayon::prelude::*;

/// Configuration of the mixed-precision kernel.
#[derive(Clone, Copy, Debug)]
pub struct MixedConfig {
    /// Normalization policy for the f16 conversion. `PerTensor` is the
    /// paper's scheme; `None` reproduces the unnormalized error curve.
    pub normalization: Normalization,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            normalization: Normalization::PerTensor,
        }
    }
}

/// Reusable storage of the mixed-precision kernel: the double-precision
/// transients plus their four fused f16 micro-panel conversions (the `hg`
/// tensors as left-operand panels, the `hd` tensors as right-operand
/// panels).
pub struct MixedScratch {
    /// Stage A/B transients (double precision).
    pub tr: Transients,
    hg_l16: F16APanels,
    hg_g16: F16APanels,
    hd_l16: F16BPanels,
    hd_g16: F16BPanels,
}

impl MixedScratch {
    /// Empty scratch; buffers materialize on first use.
    pub fn empty() -> Self {
        MixedScratch {
            tr: Transients::empty(),
            hg_l16: F16APanels::empty(),
            hg_g16: F16APanels::empty(),
            hd_l16: F16BPanels::empty(),
            hd_g16: F16BPanels::empty(),
        }
    }
}

impl Default for MixedScratch {
    fn default() -> Self {
        Self::empty()
    }
}

/// Evaluates `Σ^≷`/`Π^≷` with the stage-C multiplications in emulated
/// Tensor-Core binary16. Inputs as in
/// [`crate::transformed::sse_transformed`] (AtomMajor `G`).
pub fn sse_mixed(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    cfg: MixedConfig,
) -> SseOutput {
    let mut scratch = MixedScratch::empty();
    let mut out = SseOutput::empty();
    sse_mixed_into(prob, g_l, g_g, d_l, d_g, cfg, &mut scratch, &mut out);
    out
}

/// [`sse_mixed`] with reusable transient/conversion/output storage.
#[allow(clippy::too_many_arguments)]
pub fn sse_mixed_into(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    cfg: MixedConfig,
    scratch: &mut MixedScratch,
    out: &mut SseOutput,
) {
    build_transients_into(prob, g_l, g_g, d_l, d_g, &mut scratch.tr);
    let tr = &scratch.tr;

    let norb = prob.norb();
    let bsz = norb * norb;
    let dims = BatchDims::square(norb);

    // Fused pack-and-convert: normalize, clamp, round to binary16 and lay
    // out as split-complex micro-panels in one pass over each transient
    // (the paper's "split-complex format", here already in the shape the
    // packed micro-kernel sweeps).
    let n_hg = tr.hg_l.len() / bsz;
    let n_hd = tr.hd_l.len() / bsz;
    scratch
        .hg_l16
        .pack_from_c64(&tr.hg_l, norb, norb, n_hg, bsz, cfg.normalization);
    scratch
        .hg_g16
        .pack_from_c64(&tr.hg_g, norb, norb, n_hg, bsz, cfg.normalization);
    scratch
        .hd_l16
        .pack_from_c64(&tr.hd_l, norb, norb, n_hd, bsz, cfg.normalization);
    scratch
        .hd_g16
        .pack_from_c64(&tr.hd_g, norb, norb, n_hd, bsz, cfg.normalization);
    let (hg_l16, hg_g16) = (&scratch.hg_l16, &scratch.hg_g16);
    let (hd_l16, hd_g16) = (&scratch.hd_l16, &scratch.hd_g16);
    let na = prob.na();
    let (nk, ne, nq, nw) = (prob.nk, prob.ne, prob.nq, prob.nw);
    out.sigma_l.reset(nk, ne, na, norb, GLayout::AtomMajor);
    out.sigma_g.reset(nk, ne, na, norb, GLayout::AtomMajor);
    let sigma_l = &mut out.sigma_l;
    let sigma_g = &mut out.sigma_g;

    let atom_chunk = nk * ne * bsz;
    let offsets = &prob.device.neighbors.offsets;
    let denorm_ll = 1.0 / (hg_l16.factor * hd_l16.factor);
    let denorm_lg = 1.0 / (hg_l16.factor * hd_g16.factor);
    let denorm_gg = 1.0 / (hg_g16.factor * hd_g16.factor);
    let denorm_gl = 1.0 / (hg_g16.factor * hd_l16.factor);

    let flops_c: u64 = {
        let sl = sigma_l.as_mut_slice();
        let sg = sigma_g.as_mut_slice();
        sl.par_chunks_mut(atom_chunk)
            .zip(sg.par_chunks_mut(atom_chunk))
            .enumerate()
            .map(|(a, (out_l, out_g))| {
                let mut flops = 0u64;
                for p in offsets[a]..offsets[a + 1] {
                    for i in 0..3 {
                        for q in 0..nq {
                            for m in 0..nw {
                                let steps = prob.omega_steps(m);
                                if steps >= ne {
                                    continue;
                                }
                                let batch = ne - steps;
                                // Panel item of the shared ∇H·D block.
                                let hd_item = tr.hd_offset(p, i, q, m) / bsz;
                                for k in 0..nk {
                                    let kk = prob.k_minus_q(k, q);
                                    let out_base = k * ne * bsz;
                                    // Panel items of the hg(e=0) / hg(e=steps)
                                    // batches (hg items are e-contiguous).
                                    let a0 = tr.hg_offset(p, i, kk, 0) / bsz;
                                    let a1 = tr.hg_offset(p, i, kk, steps) / bsz;
                                    let c0 = out_base + steps * bsz;
                                    let c1 = out_base;
                                    let n_el = batch * bsz;
                                    // Emission.
                                    sbsmm_f16_packed(
                                        dims,
                                        batch,
                                        hg_l16,
                                        a0,
                                        hd_l16,
                                        hd_item,
                                        denorm_ll,
                                        &mut out_l[c0..c0 + n_el],
                                        bsz,
                                    );
                                    sbsmm_f16_packed(
                                        dims,
                                        batch,
                                        hg_g16,
                                        a0,
                                        hd_g16,
                                        hd_item,
                                        denorm_gg,
                                        &mut out_g[c0..c0 + n_el],
                                        bsz,
                                    );
                                    // Absorption.
                                    sbsmm_f16_packed(
                                        dims,
                                        batch,
                                        hg_l16,
                                        a1,
                                        hd_g16,
                                        hd_item,
                                        denorm_lg,
                                        &mut out_l[c1..c1 + n_el],
                                        bsz,
                                    );
                                    sbsmm_f16_packed(
                                        dims,
                                        batch,
                                        hg_g16,
                                        a1,
                                        hd_l16,
                                        hd_item,
                                        denorm_gl,
                                        &mut out_g[c1..c1 + n_el],
                                        bsz,
                                    );
                                    flops += 4 * batch as u64 * dims.flops();
                                }
                            }
                        }
                    }
                }
                flops
            })
            .sum()
    };
    if prob.scale_sigma != 1.0 {
        for v in sigma_l.as_mut_slice() {
            *v = v.scale(prob.scale_sigma);
        }
        for v in sigma_g.as_mut_slice() {
            *v = v.scale(prob.scale_sigma);
        }
    }

    // Π stays double-precision: reuse stage D of the transformed kernel.
    let flops_d = pi_stage_f64(prob, tr, &mut out.pi_l, &mut out.pi_g);

    out.flops = tr.flops + flops_c + flops_d;
}

/// The double-precision Π stage shared with the transformed kernel,
/// writing into reusable output tensors.
fn pi_stage_f64(prob: &SseProblem, tr: &Transients, pi_l: &mut DTensor, pi_g: &mut DTensor) -> u64 {
    let norb = prob.norb();
    let bsz = norb * norb;
    let na = prob.na();
    let (nk, ne, nq, nw) = (prob.nk, prob.ne, prob.nq, prob.nw);
    let npairs = prob.npairs();
    pi_l.reset(nq, nw, npairs, na, DLayout::PointMajor);
    pi_g.reset(nq, nw, npairs, na, DLayout::PointMajor);
    let mut flops = 0u64;
    let pairs = &prob.device.neighbors.pairs;
    // `p` indexes `pairs` and `rev_pair` in lockstep; an iterator zip
    // would obscure the pair/reverse-pair relationship.
    #[allow(clippy::needless_range_loop)]
    for p in 0..npairs {
        let a = pairs[p].from;
        let rev = prob.rev_pair[p];
        for q in 0..nq {
            for m in 0..nw {
                let steps = prob.omega_steps(m);
                if steps >= ne {
                    continue;
                }
                let mut c_l = [C64::ZERO; D_BSZ];
                let mut c_g = [C64::ZERO; D_BSZ];
                for k in 0..nk {
                    let kq = prob.k_plus_q(k, q);
                    for e in 0..ne - steps {
                        for i in 0..3 {
                            let x_l = &tr.hg_l[tr.hg_offset(rev, i, kq, e + steps)..];
                            let x_g = &tr.hg_g[tr.hg_offset(rev, i, kq, e + steps)..];
                            for j in 0..3 {
                                let y_g = &tr.hg_g[tr.hg_offset(p, j, k, e)..];
                                let y_l = &tr.hg_l[tr.hg_offset(p, j, k, e)..];
                                c_l[j * 3 + i] +=
                                    crate::reference::trace_product(&x_l[..bsz], &y_g[..bsz], norb);
                                c_g[j * 3 + i] +=
                                    crate::reference::trace_product(&x_g[..bsz], &y_l[..bsz], norb);
                                flops += 2 * 8 * bsz as u64;
                            }
                        }
                    }
                }
                let pe = pi_l.pair_entry(p);
                let de = pi_l.diag_entry(a);
                for x in 0..D_BSZ {
                    pi_l.block_mut(q, m, pe)[x] += c_l[x].scale(prob.scale_pi);
                    pi_l.block_mut(q, m, de)[x] += c_l[x].scale(prob.scale_pi);
                    pi_g.block_mut(q, m, pe)[x] += c_g[x].scale(prob.scale_pi);
                    pi_g.block_mut(q, m, de)[x] += c_g[x].scale(prob.scale_pi);
                }
            }
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_inputs, tiny_device, tiny_problem};
    use crate::transformed::sse_transformed;

    fn rel_dev_g(a: &GTensor, b: &GTensor) -> f64 {
        a.max_deviation(b) / b.max_abs().max(1e-300)
    }

    #[test]
    fn normalized_f16_close_to_f64() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 77);
        let gl = gl.to_layout(GLayout::AtomMajor);
        let gg = gg.to_layout(GLayout::AtomMajor);
        let exact = sse_transformed(&prob, &gl, &gg, &dl, &dg);
        let mixed = sse_mixed(&prob, &gl, &gg, &dl, &dg, MixedConfig::default());
        let err_l = rel_dev_g(&mixed.sigma_l, &exact.sigma_l);
        let err_g = rel_dev_g(&mixed.sigma_g, &exact.sigma_g);
        assert!(err_l < 5e-3, "Σ< f16 error {err_l}");
        assert!(err_g < 5e-3, "Σ> f16 error {err_g}");
        // Π is double precision: should agree tightly.
        let err_pi = mixed.pi_l.max_deviation(&exact.pi_l) / exact.pi_l.max_abs().max(1e-300);
        assert!(err_pi < 1e-12, "Π must stay f64-exact: {err_pi}");
    }

    #[test]
    fn unnormalized_f16_much_worse() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, mut dl, mut dg) = random_inputs(&prob, 99);
        // Push the ∇H·D transients into the binary16 subnormal range
        // (~1e-6), where raw storage quantizes coarsely but the normalized
        // path is unaffected — the regime of Fig. 7a's small values.
        for v in dl.as_mut_slice() {
            *v = v.scale(1e-2);
        }
        for v in dg.as_mut_slice() {
            *v = v.scale(1e-2);
        }
        let gl = gl.to_layout(GLayout::AtomMajor);
        let gg = gg.to_layout(GLayout::AtomMajor);
        let exact = sse_transformed(&prob, &gl, &gg, &dl, &dg);
        let norm = sse_mixed(&prob, &gl, &gg, &dl, &dg, MixedConfig::default());
        let raw = sse_mixed(
            &prob,
            &gl,
            &gg,
            &dl,
            &dg,
            MixedConfig {
                normalization: Normalization::None,
            },
        );
        let err_norm = rel_dev_g(&norm.sigma_l, &exact.sigma_l);
        let err_raw = rel_dev_g(&raw.sigma_l, &exact.sigma_l);
        assert!(
            err_raw > 10.0 * err_norm,
            "normalization must help: raw {err_raw} vs normalized {err_norm}"
        );
    }

    #[test]
    fn deep_underflow_without_normalization() {
        // D magnitudes ~1e-5 × ∇H give hd values below the f16 subnormal
        // floor after the 1e-3 G factors: raw conversion zeroes Σ entirely.
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, mut dl, mut dg) = random_inputs(&prob, 5);
        for v in dl.as_mut_slice() {
            *v = v.scale(1e-6);
        }
        for v in dg.as_mut_slice() {
            *v = v.scale(1e-6);
        }
        let gl = gl.to_layout(GLayout::AtomMajor);
        let gg = gg.to_layout(GLayout::AtomMajor);
        let raw = sse_mixed(
            &prob,
            &gl,
            &gg,
            &dl,
            &dg,
            MixedConfig {
                normalization: Normalization::None,
            },
        );
        assert_eq!(raw.sigma_l.max_abs(), 0.0, "raw f16 must underflow to zero");
        // With normalization the same inputs survive.
        let norm = sse_mixed(&prob, &gl, &gg, &dl, &dg, MixedConfig::default());
        assert!(norm.sigma_l.max_abs() > 0.0);
    }
}
