//! The [`SseKernel`] trait: SSE evaluation as a pluggable strategy.
//!
//! The three kernel variants of the paper (§5.3–5.4) share one signature —
//! Green's function tensors in, self-energy tensors out — so the driver
//! dispatches through a trait object instead of matching on an enum. Each
//! implementation owns its layout requirements: callers hand over tensors
//! in any layout and the kernel converts when needed (conversion is
//! skipped when the input already matches, so a driver that caches the
//! preferred layout pays nothing).

use crate::mixed::{sse_mixed, MixedConfig};
use crate::problem::SseProblem;
use crate::reference::{sse_reference, SseOutput};
use crate::tensors::{DLayout, DTensor, GLayout, GTensor};
use crate::transformed::sse_transformed;

/// One scattering-self-energy evaluation strategy.
///
/// Implementations must be pure: the same inputs produce the same outputs,
/// and no state is carried between calls (the driver may call `run`
/// concurrently from different simulations).
pub trait SseKernel: Send + Sync {
    /// Short identifier for logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Evaluates `Σ^≷` and `Π^≷` from the Green's function tensors.
    fn run(
        &self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> SseOutput;
}

/// Borrows `g` when it is already in `want` layout, converting otherwise.
fn in_layout(g: &GTensor, want: GLayout) -> std::borrow::Cow<'_, GTensor> {
    if g.layout == want {
        std::borrow::Cow::Borrowed(g)
    } else {
        std::borrow::Cow::Owned(g.to_layout(want))
    }
}

/// Borrows `d` when it is already in `want` layout, converting otherwise.
fn in_layout_d(d: &DTensor, want: DLayout) -> std::borrow::Cow<'_, DTensor> {
    if d.layout == want {
        std::borrow::Cow::Borrowed(d)
    } else {
        std::borrow::Cow::Owned(d.to_layout(want))
    }
}

/// The OMEN-style reference loop nest (baseline; §5.3, Table 10).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceKernel;

impl SseKernel for ReferenceKernel {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run(
        &self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> SseOutput {
        let gl = in_layout(g_l, GLayout::PairMajor);
        let gg = in_layout(g_g, GLayout::PairMajor);
        let dl = in_layout_d(d_l, DLayout::PointMajor);
        let dg = in_layout_d(d_g, DLayout::PointMajor);
        sse_reference(prob, &gl, &gg, &dl, &dg)
    }
}

/// The DaCe-transformed kernel (map fission, relayout, strided-batched
/// GEMM, fusion; Fig. 6).
#[derive(Clone, Copy, Debug, Default)]
pub struct TransformedKernel;

impl SseKernel for TransformedKernel {
    fn name(&self) -> &'static str {
        "transformed"
    }

    fn run(
        &self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> SseOutput {
        let gl = in_layout(g_l, GLayout::AtomMajor);
        let gg = in_layout(g_g, GLayout::AtomMajor);
        let dl = in_layout_d(d_l, DLayout::PointMajor);
        let dg = in_layout_d(d_g, DLayout::PointMajor);
        sse_transformed(prob, &gl, &gg, &dl, &dg)
    }
}

/// The Tensor-Core-emulating binary16 kernel (§5.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct MixedKernel {
    /// Normalization policy of the f16 conversion.
    pub config: MixedConfig,
}

impl MixedKernel {
    /// A mixed-precision kernel with the given configuration.
    pub fn new(config: MixedConfig) -> Self {
        MixedKernel { config }
    }
}

impl SseKernel for MixedKernel {
    fn name(&self) -> &'static str {
        "mixed-f16"
    }

    fn run(
        &self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> SseOutput {
        let gl = in_layout(g_l, GLayout::AtomMajor);
        let gg = in_layout(g_g, GLayout::AtomMajor);
        let dl = in_layout_d(d_l, DLayout::PointMajor);
        let dg = in_layout_d(d_g, DLayout::PointMajor);
        sse_mixed(prob, &gl, &gg, &dl, &dg, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn trait_dispatch_matches_direct_calls() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 7);
        let direct = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let kernels: Vec<Box<dyn SseKernel>> = vec![
            Box::new(ReferenceKernel),
            Box::new(TransformedKernel),
            Box::new(MixedKernel::default()),
        ];
        for k in &kernels {
            let out = k.run(&prob, &gl, &gg, &dl, &dg);
            let scale = direct.sigma_l.max_abs().max(1e-300);
            let tol = if k.name() == "mixed-f16" { 1e-2 } else { 1e-10 };
            assert!(
                out.sigma_l.max_deviation(&direct.sigma_l) / scale < tol,
                "{} deviates from reference",
                k.name()
            );
        }
    }

    #[test]
    fn layout_conversion_is_transparent() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 13);
        let gla = gl.to_layout(GLayout::AtomMajor);
        let gga = gg.to_layout(GLayout::AtomMajor);
        // Same kernel, both input layouts: identical results.
        let a = TransformedKernel.run(&prob, &gl, &gg, &dl, &dg);
        let b = TransformedKernel.run(&prob, &gla, &gga, &dl, &dg);
        assert_eq!(a.sigma_l.max_deviation(&b.sigma_l), 0.0);
        assert_eq!(a.flops, b.flops);
    }
}
