//! The [`SseKernel`] trait: SSE evaluation as a pluggable strategy.
//!
//! The three kernel variants of the paper (§5.3–5.4) share one signature —
//! Green's function tensors in, self-energy tensors out — so the driver
//! dispatches through a trait object instead of matching on an enum. Each
//! implementation owns its layout requirements: callers hand over tensors
//! in any layout and the kernel converts when needed (conversion is
//! skipped when the input already matches, so a driver that caches the
//! preferred layout pays nothing).
//!
//! Kernels are *stateful*: `run` takes `&mut self` and writes into
//! double-buffered output tensors owned by the kernel (see
//! [`KernelState`]), so a warm Born loop re-applies the kernel without
//! touching the heap. The previous iteration's output stays readable in
//! the other buffer, which is what makes [`SseKernel::output_delta`] — the
//! relative Σ change between consecutive Born iterations — free to
//! compute.

use crate::mixed::{sse_mixed_into, MixedConfig, MixedScratch};
use crate::problem::SseProblem;
use crate::reference::{sse_reference_into, SseOutput};
use crate::tensors::{DLayout, DTensor, GLayout, GTensor};
use crate::transformed::{sse_transformed_into, Transients};
use omen_linalg::Workspace;

/// Reusable state shared by every kernel implementation: layout-conversion
/// staging tensors and the double-buffered outputs.
///
/// All buffers start empty and materialize on first use; from the second
/// `run` on the same problem shape onward the kernel performs zero heap
/// allocations (pinned by `tests/integration_alloc.rs`).
#[derive(Default)]
pub struct KernelState {
    gl_conv: GTensor,
    gg_conv: GTensor,
    dl_conv: DTensor,
    dg_conv: DTensor,
    out: [SseOutput; 2],
    cur: usize,
    ran: [bool; 2],
}

impl KernelState {
    /// Fresh state; performs no allocation.
    pub fn new() -> Self {
        KernelState {
            gl_conv: GTensor::zeros(0, 0, 0, 0, GLayout::PairMajor),
            gg_conv: GTensor::zeros(0, 0, 0, 0, GLayout::PairMajor),
            dl_conv: DTensor::zeros(0, 0, 0, 0, DLayout::PointMajor),
            dg_conv: DTensor::zeros(0, 0, 0, 0, DLayout::PointMajor),
            out: [SseOutput::empty(), SseOutput::empty()],
            cur: 0,
            ran: [false, false],
        }
    }

    /// Advances to the other output buffer and returns its index.
    fn flip(&mut self) -> usize {
        if self.ran[self.cur] {
            self.cur = 1 - self.cur;
        }
        self.cur
    }

    /// The most recently produced output.
    pub fn output(&self) -> &SseOutput {
        &self.out[self.cur]
    }

    /// Relative max-norm change of `Σ^<` between the two most recent
    /// applications, or `None` before two runs have completed (or after
    /// [`reset_history`](Self::reset_history)). A cheap convergence
    /// diagnostic for the Born loop that costs no extra storage thanks to
    /// the double buffer.
    pub fn output_delta(&self) -> Option<f64> {
        let prev = 1 - self.cur;
        if !(self.ran[self.cur] && self.ran[prev]) {
            return None;
        }
        let a = &self.out[self.cur].sigma_l;
        let b = &self.out[prev].sigma_l;
        if (a.nk, a.ne, a.na, a.norb) != (b.nk, b.ne, b.na, b.norb) {
            return None;
        }
        let scale = a.max_abs().max(1e-300);
        Some(a.max_deviation(b) / scale)
    }

    /// Forgets run history (e.g. when the same kernel instance is reused
    /// for a different sweep point) while keeping the allocated buffers.
    pub fn reset_history(&mut self) {
        self.ran = [false, false];
    }

    /// Advances the double buffer and hands out the fresh output slot,
    /// marking it as produced. For kernel implementations that assemble
    /// their output elsewhere (e.g. a distributed communication-plan
    /// kernel gathering rank contributions) and then deposit it here so
    /// [`output_delta`](Self::output_delta) keeps working.
    pub fn advance_output(&mut self) -> &mut SseOutput {
        let cur = self.flip();
        self.ran[cur] = true;
        &mut self.out[cur]
    }
}

/// One scattering-self-energy evaluation strategy.
///
/// Implementations must be deterministic — the same inputs produce the
/// same output values — but are stateful for reuse: `run` borrows the
/// kernel mutably and the returned output lives inside the kernel's
/// double buffer. A driver owns one kernel per simulation; concurrent
/// simulations each own their own instance (the trait is `Send` so whole
/// simulations migrate between worker threads, as in `omen-serve`).
pub trait SseKernel: Send {
    /// Short identifier for logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Evaluates `Σ^≷` and `Π^≷` from the Green's function tensors into
    /// the kernel's current output buffer.
    fn run(
        &mut self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &SseOutput;

    /// The shared reusable state (double buffer + staging tensors).
    fn state(&self) -> &KernelState;

    /// Mutable access to the shared state.
    fn state_mut(&mut self) -> &mut KernelState;

    /// Relative `Σ^<` change between the last two applications (see
    /// [`KernelState::output_delta`]).
    fn output_delta(&self) -> Option<f64> {
        self.state().output_delta()
    }
}

/// Stages `g` in `want` layout: pass-through when it already matches,
/// otherwise an allocation-free conversion into `buf`.
fn staged_g<'a>(g: &'a GTensor, want: GLayout, buf: &'a mut GTensor) -> &'a GTensor {
    if g.layout == want {
        g
    } else {
        g.to_layout_into(want, buf);
        buf
    }
}

/// Stages `d` in `want` layout (see [`staged_g`]).
fn staged_d<'a>(d: &'a DTensor, want: DLayout, buf: &'a mut DTensor) -> &'a DTensor {
    if d.layout == want {
        d
    } else {
        d.to_layout_into(want, buf);
        buf
    }
}

/// The OMEN-style reference loop nest (baseline; §5.3, Table 10).
#[derive(Default)]
pub struct ReferenceKernel {
    state: KernelState,
    ws: Workspace,
}

impl ReferenceKernel {
    /// A fresh reference kernel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SseKernel for ReferenceKernel {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run(
        &mut self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &SseOutput {
        let _span = omen_trace::span!("sse_kernel");
        let cur = self.state.flip();
        let gl = staged_g(g_l, GLayout::PairMajor, &mut self.state.gl_conv);
        let gg = staged_g(g_g, GLayout::PairMajor, &mut self.state.gg_conv);
        let dl = staged_d(d_l, DLayout::PointMajor, &mut self.state.dl_conv);
        let dg = staged_d(d_g, DLayout::PointMajor, &mut self.state.dg_conv);
        sse_reference_into(prob, gl, gg, dl, dg, &mut self.ws, &mut self.state.out[cur]);
        omen_trace::add(omen_trace::Counter::SseFlops, self.state.out[cur].flops);
        self.state.ran[cur] = true;
        &self.state.out[cur]
    }

    fn state(&self) -> &KernelState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

/// The DaCe-transformed kernel (map fission, relayout, strided-batched
/// GEMM, fusion; Fig. 6).
#[derive(Default)]
pub struct TransformedKernel {
    state: KernelState,
    tr: Transients,
}

impl TransformedKernel {
    /// A fresh transformed kernel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SseKernel for TransformedKernel {
    fn name(&self) -> &'static str {
        "transformed"
    }

    fn run(
        &mut self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &SseOutput {
        let _span = omen_trace::span!("sse_kernel");
        let cur = self.state.flip();
        let gl = staged_g(g_l, GLayout::AtomMajor, &mut self.state.gl_conv);
        let gg = staged_g(g_g, GLayout::AtomMajor, &mut self.state.gg_conv);
        let dl = staged_d(d_l, DLayout::PointMajor, &mut self.state.dl_conv);
        let dg = staged_d(d_g, DLayout::PointMajor, &mut self.state.dg_conv);
        sse_transformed_into(prob, gl, gg, dl, dg, &mut self.tr, &mut self.state.out[cur]);
        omen_trace::add(omen_trace::Counter::SseFlops, self.state.out[cur].flops);
        self.state.ran[cur] = true;
        &self.state.out[cur]
    }

    fn state(&self) -> &KernelState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

/// The Tensor-Core-emulating binary16 kernel (§5.4).
#[derive(Default)]
pub struct MixedKernel {
    /// Normalization policy of the f16 conversion.
    pub config: MixedConfig,
    state: KernelState,
    scratch: MixedScratch,
}

impl MixedKernel {
    /// A mixed-precision kernel with the given configuration.
    pub fn new(config: MixedConfig) -> Self {
        MixedKernel {
            config,
            state: KernelState::new(),
            scratch: MixedScratch::empty(),
        }
    }
}

impl SseKernel for MixedKernel {
    fn name(&self) -> &'static str {
        "mixed-f16"
    }

    fn run(
        &mut self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &SseOutput {
        let _span = omen_trace::span!("sse_kernel");
        let cur = self.state.flip();
        let gl = staged_g(g_l, GLayout::AtomMajor, &mut self.state.gl_conv);
        let gg = staged_g(g_g, GLayout::AtomMajor, &mut self.state.gg_conv);
        let dl = staged_d(d_l, DLayout::PointMajor, &mut self.state.dl_conv);
        let dg = staged_d(d_g, DLayout::PointMajor, &mut self.state.dg_conv);
        sse_mixed_into(
            prob,
            gl,
            gg,
            dl,
            dg,
            self.config,
            &mut self.scratch,
            &mut self.state.out[cur],
        );
        omen_trace::add(omen_trace::Counter::SseFlops, self.state.out[cur].flops);
        self.state.ran[cur] = true;
        &self.state.out[cur]
    }

    fn state(&self) -> &KernelState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sse_reference;
    use crate::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn trait_dispatch_matches_direct_calls() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 7);
        let direct = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let mut kernels: Vec<Box<dyn SseKernel>> = vec![
            Box::new(ReferenceKernel::new()),
            Box::new(TransformedKernel::new()),
            Box::new(MixedKernel::default()),
        ];
        for k in &mut kernels {
            let name = k.name();
            let out = k.run(&prob, &gl, &gg, &dl, &dg);
            let scale = direct.sigma_l.max_abs().max(1e-300);
            let tol = if name == "mixed-f16" { 1e-2 } else { 1e-10 };
            assert!(
                out.sigma_l.max_deviation(&direct.sigma_l) / scale < tol,
                "{name} deviates from reference"
            );
        }
    }

    #[test]
    fn layout_conversion_is_transparent() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 13);
        let gla = gl.to_layout(GLayout::AtomMajor);
        let gga = gg.to_layout(GLayout::AtomMajor);
        // Same kernel, both input layouts: identical results.
        let a = TransformedKernel::new()
            .run(&prob, &gl, &gg, &dl, &dg)
            .clone();
        let b = TransformedKernel::new()
            .run(&prob, &gla, &gga, &dl, &dg)
            .clone();
        assert_eq!(a.sigma_l.max_deviation(&b.sigma_l), 0.0);
        assert_eq!(a.flops, b.flops);
    }

    #[test]
    fn double_buffer_tracks_delta() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 19);
        let mut k = ReferenceKernel::new();
        assert!(k.output_delta().is_none(), "no delta before any run");
        k.run(&prob, &gl, &gg, &dl, &dg);
        assert!(k.output_delta().is_none(), "no delta after a single run");
        k.run(&prob, &gl, &gg, &dl, &dg);
        // Identical inputs: the two buffers must agree exactly.
        assert_eq!(k.output_delta(), Some(0.0));
        // Different inputs: delta becomes nonzero, and the previous
        // output is still intact in the other buffer.
        let (gl2, gg2, ..) = random_inputs(&prob, 23);
        k.run(&prob, &gl2, &gg2, &dl, &dg);
        assert!(k.output_delta().unwrap() > 0.0);
        k.state_mut().reset_history();
        assert!(k.output_delta().is_none(), "history reset clears delta");
    }
}
