//! End-to-end pipeline validation: the full self-consistent simulation
//! across all crates, plus the staging path on real serialized devices.

use dace_omen::comm::{run_world, stage_material, VolumeLedger};
use dace_omen::core::{
    electro_thermal_report, KernelVariant, Normalization, Simulation, SimulationConfig,
};
use dace_omen::device::{deserialize_structure, serialize_structure, DeviceStructure};

#[test]
fn self_consistent_loop_converges_and_conserves() {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 12;
    let mut sim = Simulation::new(cfg).expect("valid config");
    let result = sim.run().expect("run succeeds");
    assert!(
        result.records.last().unwrap().rel_change < 1e-3,
        "not converging"
    );
    assert!(result.current() > 0.0);
    assert!(
        result.current_nonuniformity() < 5e-3,
        "current not conserved"
    );
}

#[test]
fn mixed_precision_converges_to_f64_answer() {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 6;
    let run = |kernel| {
        let mut c = cfg.clone();
        c.kernel = kernel;
        Simulation::new(c)
            .expect("valid config")
            .run()
            .expect("run succeeds")
            .current()
    };
    let f64v = run(KernelVariant::Transformed);
    let f16v = run(KernelVariant::Mixed(Normalization::PerTensor));
    assert!(
        ((f16v - f64v) / f64v).abs() < 1e-3,
        "f16-normalized current {f16v} vs f64 {f64v}"
    );
}

#[test]
fn self_heating_appears_under_bias() {
    let mut cfg = SimulationConfig::tiny();
    cfg.coupling = 0.01;
    cfg.mu_source = 0.4;
    cfg.max_iterations = 8;
    let mut sim = Simulation::new(cfg).expect("valid config");
    let result = sim.run().expect("run succeeds");
    let report = electro_thermal_report(&sim, &result);
    assert!(
        report.t_max() > report.contact_temperature,
        "no Joule heating"
    );
}

#[test]
fn staged_ingestion_round_trips_device() {
    // Serialize a device, broadcast it in chunks over simulated MPI,
    // deserialize on every rank, and verify it still solves.
    let dev = DeviceStructure::build(dace_omen::device::DeviceConfig::tiny());
    let bytes = serialize_structure(&dev).to_vec();
    let ledger = VolumeLedger::new(4);
    let devices = run_world(4, ledger, |comm| {
        let data = if comm.rank() == 0 {
            Some(&bytes[..])
        } else {
            None
        };
        let received = stage_material(&comm, 0, data, 128);
        deserialize_structure(&received).expect("valid device")
    });
    for d in &devices {
        assert_eq!(d.num_atoms(), dev.num_atoms());
        assert!(d.hamiltonian(0.4).is_hermitian(1e-12));
    }
}
