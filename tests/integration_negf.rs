//! Cross-crate NEGF validation: the device generator, boundary methods,
//! and RGF solver composed end-to-end against dense references and
//! physical invariants.

use dace_omen::device::{DeviceConfig, DeviceStructure};
use dace_omen::linalg::c64;
use dace_omen::rgf::{
    caroli_transmission, dense_solve, interface_current, CacheMode, ElectronParams, ElectronSolver,
};

#[test]
fn device_point_matches_dense_reference() {
    let dev = DeviceStructure::build(DeviceConfig::tiny());
    let mut solver = ElectronSolver::new(
        &dev,
        vec![0.0; dev.num_atoms()],
        ElectronParams::default(),
        CacheMode::NoCache,
        vec![0.3],
        vec![0.2],
    );
    let out = solver.solve(0, 0, None, None, None);
    // Reassemble the dense problem from the folded M and Σ blocks the
    // solver actually used (boundary conditions included).
    let bs = dev.block_size_el();
    let nb = dev.bnum();
    let mut sl = vec![dace_omen::linalg::CMatrix::zeros(bs, bs); nb];
    let mut sg = vec![dace_omen::linalg::CMatrix::zeros(bs, bs); nb];
    sl[0] += &out.boundary_lg_left.0;
    sg[0] += &out.boundary_lg_left.1;
    sl[nb - 1] += &out.boundary_lg_right.0;
    sg[nb - 1] += &out.boundary_lg_right.1;
    let dense = dense_solve(&out.m, &sl, &sg);
    let dev_max = out.sol.max_deviation_from_dense(&dense, bs);
    assert!(dev_max < 1e-8, "RGF vs dense deviation {dev_max}");
}

#[test]
fn ballistic_device_landauer_consistency() {
    // On the real device: interface current == Caroli transmission × Δf
    // at a fully-biased energy.
    let dev = DeviceStructure::build(DeviceConfig::tiny());
    let params = ElectronParams {
        mu_source: 10.0, // force f_L = 1
        mu_drain: -10.0, // force f_R = 0
        ..ElectronParams::default()
    };
    let mut solver = ElectronSolver::new(
        &dev,
        vec![0.0; dev.num_atoms()],
        params,
        CacheMode::NoCache,
        vec![0.0],
        vec![0.15],
    );
    let out = solver.solve(0, 0, None, None, None);
    let t = caroli_transmission(&out.m, &out.gamma.0, &out.gamma.1);
    assert!(t > 0.05, "energy must be inside a band (T = {t})");
    for n in 0..dev.bnum() - 1 {
        let j = interface_current(&out.m.upper[n], &out.sol.gl_lower[n]);
        assert!(
            (j - t).abs() < 1e-4 * t.max(1.0),
            "interface {n}: j = {j}, T = {t}"
        );
    }
}

#[test]
fn hermiticity_invariants_on_device_operators() {
    let dev = DeviceStructure::build(DeviceConfig::demo());
    for &kz in &[0.0, 0.9, -2.1] {
        assert!(dev.hamiltonian(kz).is_hermitian(1e-12));
        assert!(dev.overlap(kz).is_hermitian(1e-12));
        assert!(dev.dynamical(kz).is_hermitian(1e-12));
    }
    // Potential shifts preserve Hermiticity.
    let pot = dev.linear_potential(0.5, 0.2, 0.8);
    let h = dev.hamiltonian_with_potential(1.3, &pot);
    assert!(h.is_hermitian(1e-12));
    let _ = c64(0.0, 0.0);
}
