//! Allocation-regression test: the per-point hot path must be
//! allocation-free in steady state.
//!
//! A counting global allocator wraps `System`; after one warmup call to
//! populate the [`Workspace`] arena and the reusable outputs, a second
//! `rgf_solve_into` and a second `sse_reference_into` must perform **zero**
//! heap allocations. This pins the tentpole property of the
//! packed-GEMM/workspace redesign — a future `CMatrix::zeros`, `clone()`,
//! or allocating `matmul` sneaking back into the hot path fails this test.
//!
//! The whole check lives in a single `#[test]` so no concurrent test can
//! pollute the counters (integration-test files build into their own
//! binary, and this one contains nothing else).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dace_omen::core::{OverlappedSweep, Simulation, SimulationConfig};
use dace_omen::dataflow::{lower_sdfg, simulation_sdfg};
use dace_omen::linalg::{
    c64, sbsmm, sbsmm_f16_packed, sbsmm_pb, BatchDims, F16APanels, F16BPanels, Normalization,
    PackedB, Strides, Workspace, C64,
};
use dace_omen::rgf::testutil::test_system;
use dace_omen::rgf::{rgf_solve_into, RgfInputs, RgfSolution};
use dace_omen::sched::{run_with_arena, ArenaBuffers, BufferPlan, TaskDag};
use dace_omen::sse::testutil::{random_inputs, tiny_device, tiny_problem};
use dace_omen::sse::{sse_reference_into, SseOutput};
use dace_omen::trace;

// Per-thread counters so the libtest harness's own threads (timers,
// output capture) can't pollute the measurement. `const`-initialized TLS
// of a `Cell<u64>` has no lazy initializer and no destructor, so reading
// it inside the allocator cannot recurse or allocate.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Forwards to `System`, counting this thread's allocation events while
/// counting is on (deallocations are free — dropping into a pool is fine).
struct CountingAllocator;

#[inline]
fn record() {
    COUNTING.with(|on| {
        if on.get() {
            ALLOCATIONS.with(|n| n.set(n.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Counts this thread's allocation events during `f`.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|n| n.set(0));
    COUNTING.with(|on| on.set(true));
    f();
    COUNTING.with(|on| on.set(false));
    ALLOCATIONS.with(|n| n.get())
}

#[test]
fn steady_state_hot_path_is_allocation_free() {
    // ---- RGF: one energy-momentum point. bs > SMALL_DIM routes through
    // the packed GEMM path, so its thread-local pack buffers are covered
    // by the assertion too. ----
    let (m, sl, sg) = test_system(6, 24, 0.13);
    let inputs = RgfInputs {
        m: &m,
        sigma_l: &sl,
        sigma_g: &sg,
    };
    let mut ws = Workspace::new();
    let mut sol = RgfSolution::empty();
    // Warmup: populates the workspace arena, the reusable output blocks,
    // and the GEMM thread-local pack buffers.
    rgf_solve_into(&inputs, &mut ws, &mut sol);
    let baseline_gr = sol.gr_diag[0].clone();

    let rgf_allocs = count_allocations(|| {
        rgf_solve_into(&inputs, &mut ws, &mut sol);
    });
    assert_eq!(
        rgf_allocs, 0,
        "rgf_solve_into allocated {rgf_allocs} times on a warm workspace"
    );
    // The warm re-solve still computes the same answer.
    assert!(
        sol.gr_diag[0].approx_eq(&baseline_gr, 0.0),
        "warm solve must be bit-identical to the warmup solve"
    );

    // ---- SSE: one full reference-kernel application ----
    let dev = tiny_device();
    let prob = tiny_problem(&dev);
    let (gl, gg, dl, dg) = random_inputs(&prob, 17);
    let mut sse_ws = Workspace::new();
    let mut sse_out = SseOutput::empty();
    sse_reference_into(&prob, &gl, &gg, &dl, &dg, &mut sse_ws, &mut sse_out);
    let baseline_sigma = sse_out.sigma_l.as_slice().to_vec();

    let sse_allocs = count_allocations(|| {
        sse_reference_into(&prob, &gl, &gg, &dl, &dg, &mut sse_ws, &mut sse_out);
    });
    assert_eq!(
        sse_allocs, 0,
        "sse_reference_into allocated {sse_allocs} times on a warm workspace"
    );
    assert_eq!(
        sse_out.sigma_l.as_slice(),
        &baseline_sigma[..],
        "warm SSE apply must be bit-identical to the warmup apply"
    );

    // ---- Batched path: packed sbsmm (stage-C shape: A strided, B shared),
    // the prepacked-B sweep, and the fused f16 pack-and-convert. One
    // warmup call sizes the thread-local BatchArena and the panel
    // buffers; the second pass must not touch the heap. ----
    let dims = BatchDims::square(12);
    let bsz = 12 * 12;
    let batch = 32;
    let s = Strides {
        a: bsz,
        b: 0,
        c: bsz,
    };
    let a: Vec<C64> = (0..batch * bsz)
        .map(|i| c64((i as f64).sin() * 1e-3, (i as f64).cos() * 1e-3))
        .collect();
    let b: Vec<C64> = (0..bsz).map(|i| c64(1e-3, i as f64 * 1e-5)).collect();
    let mut c = vec![C64::ZERO; batch * bsz];
    let mut pb = PackedB::empty();
    let mut a16 = F16APanels::empty();
    let mut b16 = F16BPanels::empty();
    // Warmup.
    sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
    pb.pack(12, 12, &b);
    sbsmm_pb(dims, batch, C64::ONE, &a, s.a, &pb, C64::ONE, &mut c, s.c);
    a16.pack_from_c64(&a, 12, 12, batch, bsz, Normalization::PerTensor);
    b16.pack_from_c64(&b, 12, 12, 1, bsz, Normalization::PerTensor);
    let denorm = 1.0 / (a16.factor * b16.factor);
    sbsmm_f16_packed(dims, batch, &a16, 0, &b16, 0, denorm, &mut c, bsz);

    let batched_allocs = count_allocations(|| {
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s);
        pb.pack(12, 12, &b);
        sbsmm_pb(dims, batch, C64::ONE, &a, s.a, &pb, C64::ONE, &mut c, s.c);
        a16.pack_from_c64(&a, 12, 12, batch, bsz, Normalization::PerTensor);
        b16.pack_from_c64(&b, 12, 12, 1, bsz, Normalization::PerTensor);
        sbsmm_f16_packed(dims, batch, &a16, 0, &b16, 0, denorm, &mut c, bsz);
    });
    assert_eq!(
        batched_allocs, 0,
        "warm batched sbsmm path allocated {batched_allocs} times"
    );

    // ---- Warm driver SSE path: the sweep service reapplies the SSE
    // kernel on every Born iteration of every warm-started point, so the
    // kernel's double-buffered outputs and internal workspace must absorb
    // repeat calls without touching the heap. Two warmup calls fill both
    // halves of the double buffer; the third call must allocate nothing.
    // (The GF phase is excluded by design: its per-point observable
    // accumulators are built per phase, not per kernel application.) ----
    let mut sim = Simulation::new(SimulationConfig::tiny()).expect("valid config");
    let gf = sim.gf_phase();
    let (g_l, g_g, d_l, d_g) = (gf.g_l, gf.g_g, gf.d_l, gf.d_g);
    sim.sse_phase(&g_l, &g_g, &d_l, &d_g);
    sim.sse_phase(&g_l, &g_g, &d_l, &d_g);

    let driver_sse_allocs = count_allocations(|| {
        sim.sse_phase(&g_l, &g_g, &d_l, &d_g);
    });
    assert_eq!(
        driver_sse_allocs, 0,
        "warm driver sse_phase allocated {driver_sse_allocs} times"
    );

    // ---- Liveness-driven arena walk: the lowered simulation SDFG's
    // buffers are reserved out of the Workspace pool at their first
    // write and returned at their last use. The first walk populates
    // the pool; the warm walk must reuse every buffer without touching
    // the heap. ----
    let lowered = lower_sdfg(&simulation_sdfg()).expect("simulation SDFG lowers");
    let dag = TaskDag::from_lowered(&lowered);
    let plan = BufferPlan::from_liveness(&lowered, |name| match name {
        "G" | "Sigma" => 96,
        "D" | "Pi" => 48,
        other => panic!("unplanned container {other}"),
    });
    let mut arena_ws = Workspace::new();
    let mut bufs = ArenaBuffers::for_plan(&plan);
    run_with_arena(&dag, &plan, &mut arena_ws, &mut bufs, |_, _| {});

    let arena_allocs = count_allocations(|| {
        run_with_arena(&dag, &plan, &mut arena_ws, &mut bufs, |t, bufs| {
            if let Some(g) = bufs.by_name_mut(&plan, "G") {
                g[t] = C64::ZERO;
            }
        });
    });
    assert_eq!(
        arena_allocs, 0,
        "warm arena walk allocated {arena_allocs} times"
    );

    // ---- Overlapped sweep coordinator: a warm `OverlappedSweep` engine
    // keeps its stage workers, queues, and point/outcome storage across
    // runs, so re-running a same-sized sweep allocates nothing on the
    // coordinating thread. (The stage threads allocate for the physics;
    // the per-thread counter scopes the assertion to coordination.) ----
    let sweep_sims = || -> Vec<Simulation> {
        (0..2)
            .map(|i| {
                let mut cfg = SimulationConfig::tiny();
                cfg.max_iterations = 2;
                cfg.mu_drain = 0.01 * i as f64;
                Simulation::new(cfg).expect("valid config")
            })
            .collect()
    };
    let mut engine = OverlappedSweep::new(2);
    let mut outcomes = Vec::new();
    engine.run_into(sweep_sims(), &mut outcomes);
    assert!(outcomes.iter().all(|o| o.finished().is_some()));
    // Build (and allocate) the next sweep's simulations outside the
    // counted region: the engine's job is coordination.
    let sims = sweep_sims();

    let coord_allocs = count_allocations(|| {
        engine.run_into(sims, &mut outcomes);
    });
    assert!(outcomes.iter().all(|o| o.finished().is_some()));
    assert_eq!(
        coord_allocs, 0,
        "warm overlapped-sweep coordinator allocated {coord_allocs} times"
    );

    // ---- Disarmed tracing: the kernels above are instrumented with
    // omen-trace counters and spans, so the warm point path now passes
    // through the registry's disarmed checks. Pin the contract that a
    // disarmed registry is allocation-free — both through the raw probe
    // loop and through the instrumented sse_phase re-run. ----
    trace::disarm();
    let trace_probe_allocs = count_allocations(|| {
        for i in 0..64u64 {
            let _span = trace::span!("disarmed_probe");
            let _phase = trace::PhaseGuard::enter("disarmed_probe");
            trace::add(trace::Counter::GemmFlops, i);
            trace::add2(trace::Counter::SbsmmCalls, 1, trace::Counter::SbsmmFlops, i);
            trace::event2("disarmed_probe", i as f64, 0.0);
        }
        sim.sse_phase(&g_l, &g_g, &d_l, &d_g);
    });
    trace::rearm_from_env();
    assert_eq!(
        trace_probe_allocs, 0,
        "disarmed tracing allocated {trace_probe_allocs} times on the warm path"
    );
}
