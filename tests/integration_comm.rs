//! Cross-crate communication validation: the simulated-MPI plans, the
//! analytic volume model, and the SDFG-derived expressions must agree.

use dace_omen::comm::{run_dace_plan, run_omen_plan, DaceTiling, OmenGrid, OpKind};
use dace_omen::dataflow::{bindings, dace_volume_expr, omen_volume_expr};
use dace_omen::perf::{dace_volume_with, omen_volume, SimParams};
use dace_omen::sse::testutil::{random_inputs, tiny_device};
use dace_omen::sse::{sse_reference, SseProblem};

#[test]
fn plans_agree_with_reference_and_each_other() {
    let dev = tiny_device();
    let prob = SseProblem::new(&dev, 2, 8, 2, 2, 1.0, 1.0);
    let (gl, gg, dl, dg) = random_inputs(&prob, 99);
    let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
    let grid = OmenGrid::new(2, 2, prob.nk, prob.ne);
    let tiling = DaceTiling::new(2, 2, prob.na(), prob.ne);
    let (ro, lo) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);
    let (rd, ld) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);
    let scale = reference.sigma_l.max_abs();
    assert!(ro.sigma_l.max_deviation(&reference.sigma_l) / scale < 1e-10);
    assert!(rd.sigma_l.max_deviation(&reference.sigma_l) / scale < 1e-10);
    assert!(rd.pi_g.max_deviation(&ro.pi_g) / ro.pi_g.max_abs() < 1e-10);
    // Structure: DaCe = 4 alltoalls; OMEN = per-round collectives.
    assert_eq!(ld.calls(OpKind::Alltoall), 4);
    assert_eq!(lo.calls(OpKind::Bcast), 2 * (prob.nq * prob.nw) as u64);
}

#[test]
fn sdfg_expressions_match_perf_model() {
    // The memlet-derived Fig. 5 expressions and the §6.1.2 closed forms
    // must produce identical numbers for the G-replication and alltoall
    // volumes.
    let p = SimParams::small(7);
    let procs = 1792usize;
    let (ta, te) = (448usize, 4usize);
    let b = bindings(&[
        ("Nkz", 7.0),
        ("Nqz", 7.0),
        ("NE", 706.0),
        ("Nw", 70.0),
        ("Na", 4864.0),
        ("Nb", 34.0),
        ("Norb", 12.0),
        ("N3D", 3.0),
        ("tE", 706.0 / (procs as f64 / 7.0)),
        ("Ta", ta as f64),
        ("TE", te as f64),
    ]);
    let sdfg_dace = dace_volume_expr().eval(&b);
    let model_dace = dace_volume_with(&p, ta, te);
    assert!(
        ((sdfg_dace - model_dace) / model_dace).abs() < 1e-12,
        "DaCe volumes diverge: SDFG {sdfg_dace:e} vs model {model_dace:e}"
    );
    // The OMEN SDFG expression counts the per-point G+D traffic; the
    // closed form adds the P-fold D broadcast. They agree on the
    // G-dominated order of magnitude.
    let sdfg_omen = omen_volume_expr().eval(&b);
    let model_omen = omen_volume(&p, procs);
    let ratio = sdfg_omen / model_omen;
    assert!(
        (0.5..2.0).contains(&ratio),
        "OMEN volumes diverge: SDFG {sdfg_omen:e} vs model {model_omen:e}"
    );
}

#[test]
fn measured_dace_volume_bounded_by_model() {
    // The analytic model over-approximates the halo (c ≈ Nb); the
    // measured executor must stay at or below it (after matching units).
    let dev = tiny_device();
    let prob = SseProblem::new(&dev, 2, 10, 2, 3, 1.0, 1.0);
    let (gl, gg, dl, dg) = random_inputs(&prob, 11);
    let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
    let tiling = DaceTiling::new(3, 2, prob.na(), prob.ne);
    let (_, ledger) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);
    let p = SimParams {
        na: prob.na(),
        nb: dev.max_neighbors(),
        norb: prob.norb(),
        n3d: 3,
        nk: prob.nk,
        nq: prob.nq,
        ne: prob.ne,
        nw: prob.nw,
        bnum: dev.bnum(),
        bc_block_ops: 1.0,
    };
    let model = dace_volume_with(&p, 3, 2);
    let measured = ledger.total_bytes() as f64;
    assert!(
        measured < 1.5 * model,
        "measured {measured:.0} B should not exceed the conservative model {model:.0} B by much"
    );
}
