//! Executor equivalence: the `PointExecutor` engines must produce the
//! same physics. The thread-parallel and DAG engines re-order
//! contributions back to global point order, so they are *bit-identical*
//! to serial; the rank-partitioned engine reduces per-rank partials in
//! rank order, which reassociates floating-point sums — identical to
//! near machine precision.

use dace_omen::core::{
    CommPlan, DagExecutor, ExecutorKind, PartitionedExecutor, PlanKernel, RayonExecutor,
    SerialExecutor, Simulation, SimulationConfig, SimulationResult,
};

fn run_with_kind(kind: ExecutorKind) -> SimulationResult {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 6;
    cfg.executor = kind;
    Simulation::new(cfg)
        .expect("valid config")
        .run()
        .expect("run succeeds")
}

#[test]
fn rayon_is_bitwise_identical_to_serial() {
    let serial = run_with_kind(ExecutorKind::Serial);
    let rayon = run_with_kind(ExecutorKind::Rayon { threads: 4 });
    assert_eq!(serial.records.len(), rayon.records.len());
    for (s, r) in serial.records.iter().zip(&rayon.records) {
        assert_eq!(
            s.current.to_bits(),
            r.current.to_bits(),
            "iteration {}: serial {} vs rayon {}",
            s.iteration,
            s.current,
            r.current
        );
    }
    // Full spectral observables, not just the headline current.
    for (a, (s, r)) in serial
        .spectral
        .el_density
        .iter()
        .zip(&rayon.spectral.el_density)
        .enumerate()
    {
        assert_eq!(s.to_bits(), r.to_bits(), "el_density[{a}]");
    }
    for (a, (s, r)) in serial
        .spectral
        .ph_energy_density
        .iter()
        .zip(&rayon.spectral.ph_energy_density)
        .enumerate()
    {
        assert_eq!(s.to_bits(), r.to_bits(), "ph_energy_density[{a}]");
    }
}

#[test]
fn dag_engine_is_bitwise_identical_to_serial() {
    let serial = run_with_kind(ExecutorKind::Serial);
    let dag = run_with_kind(ExecutorKind::Dag { threads: 3 });
    assert_eq!(serial.records.len(), dag.records.len());
    for (s, d) in serial.records.iter().zip(&dag.records) {
        assert_eq!(
            s.current.to_bits(),
            d.current.to_bits(),
            "iteration {}: serial {} vs dag {}",
            s.iteration,
            s.current,
            d.current
        );
        assert_eq!(s.rel_change.to_bits(), d.rel_change.to_bits());
    }
    // Full spectral observables, not just the headline current.
    for (a, (s, d)) in serial
        .spectral
        .el_density
        .iter()
        .zip(&dag.spectral.el_density)
        .enumerate()
    {
        assert_eq!(s.to_bits(), d.to_bits(), "el_density[{a}]");
    }
    for (a, (s, d)) in serial
        .spectral
        .ph_energy_density
        .iter()
        .zip(&dag.spectral.ph_energy_density)
        .enumerate()
    {
        assert_eq!(s.to_bits(), d.to_bits(), "ph_energy_density[{a}]");
    }
}

#[test]
fn dag_thread_counts_do_not_change_results() {
    let serial = run_with_kind(ExecutorKind::Serial);
    // threads: 0 = auto; 1 falls back to the serial engine internally.
    for threads in [0, 1, 2, 5] {
        let d = run_with_kind(ExecutorKind::Dag { threads });
        assert_eq!(
            serial.current().to_bits(),
            d.current().to_bits(),
            "dag threads = {threads}"
        );
    }
}

#[test]
fn partitioned_matches_serial_to_machine_precision() {
    let serial = run_with_kind(ExecutorKind::Serial);
    let part = run_with_kind(ExecutorKind::Partitioned { ranks: 3 });
    assert_eq!(serial.records.len(), part.records.len());
    let s = serial.current();
    let p = part.current();
    assert!(
        ((s - p) / s).abs() < 1e-9,
        "partitioned current {p} vs serial {s}"
    );
    for (n, (a, b)) in serial
        .spectral
        .el_current
        .iter()
        .zip(&part.spectral.el_current)
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1e-300),
            "interface {n}: {a} vs {b}"
        );
    }
}

#[test]
fn explicit_executors_match_config_dispatch() {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 3;
    cfg.executor = ExecutorKind::Serial;
    let via_config = Simulation::new(cfg.clone())
        .expect("valid config")
        .run()
        .expect("run succeeds");

    // The trait-level entry point accepts any PointExecutor directly.
    let serial = Simulation::new(cfg.clone())
        .expect("valid config")
        .run_with(&SerialExecutor)
        .expect("run succeeds");
    let rayon = Simulation::new(cfg.clone())
        .expect("valid config")
        .run_with(&RayonExecutor::new(2))
        .expect("run succeeds");
    let dag = Simulation::new(cfg.clone())
        .expect("valid config")
        .run_with(&DagExecutor::new(2))
        .expect("run succeeds");
    let part = Simulation::new(cfg)
        .expect("valid config")
        .run_with(&PartitionedExecutor::new(2))
        .expect("run succeeds");

    assert_eq!(via_config.current().to_bits(), serial.current().to_bits());
    assert_eq!(serial.current().to_bits(), rayon.current().to_bits());
    assert_eq!(serial.current().to_bits(), dag.current().to_bits());
    let (s, p) = (serial.current(), part.current());
    assert!(((s - p) / s).abs() < 1e-9, "partitioned {p} vs serial {s}");
}

fn run_distributed(plan: CommPlan, ranks: usize) -> SimulationResult {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 4;
    cfg.executor = ExecutorKind::Distributed { ranks };
    cfg.comm_plan = plan;
    Simulation::new(cfg)
        .expect("valid config")
        .run()
        .expect("run succeeds")
}

/// Serial GF phase driving the same communication-plan SSE kernel: the
/// reference the distributed engine must reproduce *bitwise* (both run
/// the identical plan arithmetic; only the GF-phase threading differs,
/// and slot-ordered folding makes that invisible).
fn run_serial_plan_baseline(plan: CommPlan, ranks: usize) -> SimulationResult {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 4;
    cfg.executor = ExecutorKind::Serial;
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.set_kernel(Box::new(PlanKernel::new(plan, ranks)));
    sim.run().expect("run succeeds")
}

#[test]
fn distributed_installs_the_plan_kernel() {
    let mut cfg = SimulationConfig::tiny();
    cfg.executor = ExecutorKind::Distributed { ranks: 2 };
    cfg.comm_plan = CommPlan::Dace;
    let sim = Simulation::new(cfg).expect("valid config");
    assert_eq!(sim.kernel().name(), "plan-dace");
}

#[test]
fn distributed_is_bitwise_identical_to_serial_on_both_plans() {
    for plan in [CommPlan::Omen, CommPlan::Dace] {
        for ranks in [1, 2, 4] {
            let serial = run_serial_plan_baseline(plan, ranks);
            let dist = run_distributed(plan, ranks);
            assert_eq!(serial.records.len(), dist.records.len());
            for (s, d) in serial.records.iter().zip(&dist.records) {
                assert_eq!(
                    s.current.to_bits(),
                    d.current.to_bits(),
                    "{} ranks = {ranks}, iteration {}: serial {} vs distributed {}",
                    plan.name(),
                    s.iteration,
                    s.current,
                    d.current
                );
                assert_eq!(s.rel_change.to_bits(), d.rel_change.to_bits());
            }
            // Full spectral observables, not just the headline current.
            for (a, (s, d)) in serial
                .spectral
                .el_density
                .iter()
                .zip(&dist.spectral.el_density)
                .enumerate()
            {
                assert_eq!(s.to_bits(), d.to_bits(), "el_density[{a}]");
            }
            for (a, (s, d)) in serial
                .spectral
                .ph_energy_density
                .iter()
                .zip(&dist.spectral.ph_energy_density)
                .enumerate()
            {
                assert_eq!(s.to_bits(), d.to_bits(), "ph_energy_density[{a}]");
            }
        }
    }
}

#[test]
fn distributed_matches_standard_serial_physics() {
    // Against the ordinary (single-address-space) serial kernel the plans
    // agree to cross-schedule reassociation tolerance, accumulated over
    // the Born iterations.
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = 4;
    cfg.executor = ExecutorKind::Serial;
    let serial = Simulation::new(cfg)
        .expect("valid config")
        .run()
        .expect("run succeeds");
    let s = serial.current();
    for plan in [CommPlan::Omen, CommPlan::Dace] {
        let d = run_distributed(plan, 2).current();
        assert!(
            ((s - d) / s).abs() < 1e-8,
            "{} distributed current {d} vs serial {s}",
            plan.name()
        );
    }
}

#[test]
fn thread_and_rank_counts_do_not_change_results() {
    let base = run_with_kind(ExecutorKind::Rayon { threads: 1 });
    for threads in [2, 3, 8] {
        let r = run_with_kind(ExecutorKind::Rayon { threads });
        assert_eq!(
            base.current().to_bits(),
            r.current().to_bits(),
            "rayon threads = {threads}"
        );
    }
    let serial = run_with_kind(ExecutorKind::Serial);
    for ranks in [1, 2, 5, 16] {
        let r = run_with_kind(ExecutorKind::Partitioned { ranks });
        let (s, p) = (serial.current(), r.current());
        assert!(
            ((s - p) / s).abs() < 1e-9,
            "partitioned ranks = {ranks}: {p} vs {s}"
        );
    }
}
